"""A cluster's cache hierarchy: per-core L1s over a shared L2.

The hierarchy can be driven with raw (address, read/write) accesses and
produces the stream of L2 misses -- exactly the records the network replay
consumes -- so an external address trace (or a synthetic address-level
workload) can be converted into a :class:`~repro.trace.record.TraceStream`
without a full-system simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.cache.cache import SetAssociativeCache
from repro.cache.mshr import MshrFile
from repro.trace.record import AccessKind, TraceRecord


@dataclass(frozen=True)
class HierarchyAccessResult:
    """Outcome of one core access against the cluster hierarchy."""

    l1_hit: bool
    l2_hit: bool
    l2_miss_generated: bool
    coalesced: bool
    writeback_generated: bool

    @property
    def goes_to_memory(self) -> bool:
        return self.l2_miss_generated


@dataclass
class CacheHierarchy:
    """Four private L1 data caches over one shared L2."""

    cluster_id: int
    num_cores: int = 4
    l1_capacity_bytes: int = 32 * 1024
    l1_associativity: int = 4
    l2_capacity_bytes: int = 4 * 1024 * 1024
    l2_associativity: int = 16
    line_bytes: int = 64
    l2_mshrs: int = 64
    num_clusters: int = 64
    l1_caches: List[SetAssociativeCache] = field(default_factory=list, repr=False)
    l2_cache: SetAssociativeCache = field(init=False, repr=False)
    mshrs: MshrFile = field(init=False, repr=False)
    l2_misses: List[TraceRecord] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError("cluster needs at least one core")
        if not self.l1_caches:
            self.l1_caches = [
                SetAssociativeCache(
                    name=f"cluster{self.cluster_id}-l1d{i}",
                    capacity_bytes=self.l1_capacity_bytes,
                    associativity=self.l1_associativity,
                    line_bytes=self.line_bytes,
                )
                for i in range(self.num_cores)
            ]
        self.l2_cache = SetAssociativeCache(
            name=f"cluster{self.cluster_id}-l2",
            capacity_bytes=self.l2_capacity_bytes,
            associativity=self.l2_associativity,
            line_bytes=self.line_bytes,
        )
        self.mshrs = MshrFile(
            name=f"cluster{self.cluster_id}-mshrs",
            entries=self.l2_mshrs,
            line_bytes=self.line_bytes,
        )

    # -- address mapping ---------------------------------------------------------
    def home_cluster(self, address: int) -> int:
        """Line-interleaved home mapping across the 64 memory controllers."""
        return (address // self.line_bytes) % self.num_clusters

    # -- the access path -----------------------------------------------------------
    def access(
        self,
        core: int,
        thread_id: int,
        address: int,
        is_write: bool,
        gap_cycles: float = 0.0,
        now: float = 0.0,
    ) -> HierarchyAccessResult:
        """Run one core access through L1 and L2.

        L2 misses are appended to :attr:`l2_misses` as trace records ready for
        the network replay.
        """
        if not 0 <= core < self.num_cores:
            raise ValueError(f"core {core} outside cluster of {self.num_cores}")

        l1 = self.l1_caches[core]
        l1_hit, l1_victim = l1.access(address, is_write)
        writeback = False
        if l1_hit:
            return HierarchyAccessResult(
                l1_hit=True,
                l2_hit=True,
                l2_miss_generated=False,
                coalesced=False,
                writeback_generated=False,
            )

        # L1 victim writebacks land in the L2 (write-back hierarchy).
        if l1_victim is not None and l1_victim[1].dirty:
            self.l2_cache.access(l1_victim[0], is_write=True)

        l2_hit, l2_victim = self.l2_cache.access(address, is_write)
        if l2_hit:
            return HierarchyAccessResult(
                l1_hit=False,
                l2_hit=True,
                l2_miss_generated=False,
                coalesced=False,
                writeback_generated=False,
            )

        # L2 victim writebacks become memory writes.
        if l2_victim is not None and l2_victim[1].dirty:
            writeback = True
            self._record_miss(
                thread_id, l2_victim[0], is_write=True, gap_cycles=0.0
            )

        entry = self.mshrs.allocate(address, thread_id, is_write, now)
        coalesced = entry is not None and entry.coalesced_count > 1
        miss_generated = entry is not None and not coalesced
        if miss_generated:
            self._record_miss(thread_id, address, is_write, gap_cycles)
            self.mshrs.release(address)
        return HierarchyAccessResult(
            l1_hit=False,
            l2_hit=False,
            l2_miss_generated=miss_generated,
            coalesced=coalesced,
            writeback_generated=writeback,
        )

    def _record_miss(
        self, thread_id: int, address: int, is_write: bool, gap_cycles: float
    ) -> None:
        self.l2_misses.append(
            TraceRecord(
                thread_id=thread_id,
                cluster_id=self.cluster_id,
                home_cluster=self.home_cluster(address),
                kind=AccessKind.WRITE if is_write else AccessKind.READ,
                address=address,
                gap_cycles=gap_cycles,
                size_bytes=self.line_bytes,
            )
        )

    # -- reporting --------------------------------------------------------------------
    def l1_miss_rate(self) -> float:
        accesses = sum(c.stats.accesses for c in self.l1_caches)
        misses = sum(c.stats.misses for c in self.l1_caches)
        return misses / accesses if accesses else 0.0

    def l2_miss_rate(self) -> float:
        return self.l2_cache.stats.miss_rate

    def misses_to_memory(self) -> int:
        return len(self.l2_misses)
