"""Set-associative cache model.

A functional (hit/miss/replacement) cache with LRU replacement, write-back /
write-allocate behaviour and per-line coherence state.  It is used by the
cluster hierarchy (:mod:`repro.cache.hierarchy`) to turn address traces into
L2-miss streams, and by the coherence controller to hold MOESI state.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple


class CacheLineState(enum.Enum):
    """MOESI states plus Invalid for lines not present."""

    MODIFIED = "M"
    OWNED = "O"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


@dataclass
class CacheLine:
    """One resident cache line."""

    tag: int
    state: CacheLineState = CacheLineState.EXCLUSIVE
    dirty: bool = False

    @property
    def valid(self) -> bool:
        return self.state is not CacheLineState.INVALID


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache instance."""

    reads: int = 0
    writes: int = 0
    read_misses: int = 0
    write_misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class SetAssociativeCache:
    """A set-associative, write-back, write-allocate cache with LRU."""

    def __init__(
        self,
        name: str,
        capacity_bytes: int,
        associativity: int,
        line_bytes: int = 64,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        if associativity < 1:
            raise ValueError(f"associativity must be >= 1, got {associativity}")
        if line_bytes <= 0 or capacity_bytes % (line_bytes * associativity):
            raise ValueError(
                "capacity must be a whole number of sets "
                f"(capacity={capacity_bytes}, assoc={associativity}, line={line_bytes})"
            )
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.associativity = associativity
        self.line_bytes = line_bytes
        self.num_sets = capacity_bytes // (line_bytes * associativity)
        # Each set is an OrderedDict tag -> CacheLine in LRU order (oldest first).
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.stats = CacheStats()

    # -- address helpers -------------------------------------------------------
    def line_address(self, address: int) -> int:
        return address // self.line_bytes

    def set_index(self, address: int) -> int:
        return self.line_address(address) % self.num_sets

    def tag(self, address: int) -> int:
        return self.line_address(address) // self.num_sets

    def address_of(self, set_index: int, tag: int) -> int:
        return (tag * self.num_sets + set_index) * self.line_bytes

    # -- lookups ----------------------------------------------------------------
    def lookup(self, address: int, touch: bool = True) -> Optional[CacheLine]:
        """Return the resident line for ``address`` (or ``None``), updating LRU."""
        cache_set = self._sets[self.set_index(address)]
        tag = self.tag(address)
        line = cache_set.get(tag)
        if line is not None and touch:
            cache_set.move_to_end(tag)
        return line

    def contains(self, address: int) -> bool:
        return self.lookup(address, touch=False) is not None

    # -- accesses ----------------------------------------------------------------
    def access(
        self, address: int, is_write: bool
    ) -> Tuple[bool, Optional[Tuple[int, CacheLine]]]:
        """Access the cache.

        Returns ``(hit, victim)``: ``victim`` is ``(victim_address, line)`` if
        the access missed and allocating the new line evicted a valid one,
        otherwise ``None``.
        """
        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1

        line = self.lookup(address)
        if line is not None:
            if is_write:
                line.dirty = True
                if line.state in (CacheLineState.SHARED, CacheLineState.OWNED,
                                  CacheLineState.EXCLUSIVE):
                    line.state = CacheLineState.MODIFIED
            return True, None

        if is_write:
            self.stats.write_misses += 1
        else:
            self.stats.read_misses += 1
        victim = self._allocate(address, is_write)
        return False, victim

    def _allocate(
        self, address: int, is_write: bool
    ) -> Optional[Tuple[int, CacheLine]]:
        set_index = self.set_index(address)
        cache_set = self._sets[set_index]
        victim: Optional[Tuple[int, CacheLine]] = None
        if len(cache_set) >= self.associativity:
            victim_tag, victim_line = cache_set.popitem(last=False)
            self.stats.evictions += 1
            if victim_line.dirty:
                self.stats.writebacks += 1
            victim = (self.address_of(set_index, victim_tag), victim_line)
        state = CacheLineState.MODIFIED if is_write else CacheLineState.EXCLUSIVE
        cache_set[self.tag(address)] = CacheLine(
            tag=self.tag(address), state=state, dirty=is_write
        )
        return victim

    # -- coherence hooks -----------------------------------------------------------
    def set_state(self, address: int, state: CacheLineState) -> None:
        """Force the coherence state of a resident line."""
        line = self.lookup(address, touch=False)
        if line is None:
            raise KeyError(f"address {address:#x} not resident in {self.name}")
        line.state = state
        if state is CacheLineState.INVALID:
            cache_set = self._sets[self.set_index(address)]
            del cache_set[self.tag(address)]

    def invalidate(self, address: int) -> bool:
        """Invalidate a line if present; returns whether it was resident."""
        cache_set = self._sets[self.set_index(address)]
        tag = self.tag(address)
        if tag in cache_set:
            del cache_set[tag]
            return True
        return False

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    def occupancy(self) -> float:
        total_lines = self.num_sets * self.associativity
        return self.resident_lines() / total_lines
