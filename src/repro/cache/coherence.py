"""A functional MOESI directory coherence protocol (Section 3.1.2).

Corona keeps the 64 L2 caches coherent with a MOESI directory protocol: each
cluster's directory tracks, for every line homed at that cluster, which
clusters cache it and in what state.  Invalidations of widely shared lines are
delivered over the optical broadcast bus (Section 3.2.2) as a single message
instead of a storm of unicasts.

The implementation here is functional rather than timed: it maintains
directory state, produces the list of coherence messages each transition
requires, and counts how many of those messages the broadcast bus saves.  The
paper itself excludes coherence traffic from its timed network simulations
("the coherence scheme ... has not yet been modeled in the system
simulation"); this reproduction goes one step further: the
:mod:`repro.coherence` subsystem drives this protocol from the replay engine
(:mod:`repro.core.system`), turning each transition's messages into timed
resource reservations for shared-tagged misses, with invalidations riding
the optical broadcast bus on photonic configurations.  The functional
protocol remains independently usable by the broadcast-bus experiments and
the coherence unit tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple


class MoesiState(enum.Enum):
    """Stable cache-line states of the MOESI protocol."""

    MODIFIED = "M"
    OWNED = "O"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


class DirectoryState(enum.Enum):
    """Directory-side summary of a line's global state."""

    UNCACHED = "uncached"
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


@dataclass
class DirectoryEntry:
    """Directory record for one cache line."""

    line_address: int
    state: DirectoryState = DirectoryState.UNCACHED
    owner: Optional[int] = None
    sharers: Set[int] = field(default_factory=set)

    def holders(self) -> Set[int]:
        holders = set(self.sharers)
        if self.owner is not None:
            holders.add(self.owner)
        return holders


@dataclass(frozen=True)
class CoherenceAction:
    """One protocol step: messages to send and the requester's new state."""

    requester_state: MoesiState
    unicast_messages: int
    broadcast_messages: int
    invalidated_clusters: Tuple[int, ...] = ()
    data_from_memory: bool = False
    data_from_owner: Optional[int] = None


class CoherenceController:
    """The directory controller of one home cluster."""

    def __init__(
        self,
        home_cluster: int,
        broadcast_threshold: int = 4,
        line_bytes: int = 64,
    ) -> None:
        if broadcast_threshold < 1:
            raise ValueError(
                f"broadcast threshold must be >= 1, got {broadcast_threshold}"
            )
        self.home_cluster = home_cluster
        self.broadcast_threshold = broadcast_threshold
        self.line_bytes = line_bytes
        self.entries: Dict[int, DirectoryEntry] = {}
        self.read_requests = 0
        self.write_requests = 0
        self.invalidations_sent = 0
        self.broadcasts_used = 0
        self.unicasts_avoided = 0

    def _entry(self, address: int) -> DirectoryEntry:
        line = address // self.line_bytes
        if line not in self.entries:
            self.entries[line] = DirectoryEntry(line_address=line)
        return self.entries[line]

    # -- protocol transitions ---------------------------------------------------
    def handle_read(self, address: int, requester: int) -> CoherenceAction:
        """A cluster asks for a readable copy (GetS)."""
        self.read_requests += 1
        entry = self._entry(address)

        if entry.state is DirectoryState.UNCACHED:
            entry.state = DirectoryState.EXCLUSIVE
            entry.owner = requester
            return CoherenceAction(
                requester_state=MoesiState.EXCLUSIVE,
                unicast_messages=2,  # request + data response
                broadcast_messages=0,
                data_from_memory=True,
            )

        if entry.state is DirectoryState.EXCLUSIVE:
            owner = entry.owner
            if owner == requester:
                return CoherenceAction(
                    requester_state=MoesiState.EXCLUSIVE,
                    unicast_messages=0,
                    broadcast_messages=0,
                )
            # Owner is downgraded to Owned and supplies the data; the sharer
            # set tracks only non-owner holders.
            entry.state = DirectoryState.SHARED
            entry.sharers = {requester}
            entry.owner = owner
            return CoherenceAction(
                requester_state=MoesiState.SHARED,
                unicast_messages=3,  # request + forward + data
                broadcast_messages=0,
                data_from_owner=owner,
            )

        # SHARED: add the requester; data comes from the owner if one exists
        # (Owned state), otherwise from memory.
        if requester != entry.owner:
            entry.sharers.add(requester)
        supplier = entry.owner
        return CoherenceAction(
            requester_state=MoesiState.SHARED,
            unicast_messages=2 if supplier is None else 3,
            broadcast_messages=0,
            data_from_memory=supplier is None,
            data_from_owner=supplier,
        )

    def handle_write(self, address: int, requester: int) -> CoherenceAction:
        """A cluster asks for an exclusive, writable copy (GetM)."""
        self.write_requests += 1
        entry = self._entry(address)
        holders = entry.holders() - {requester}

        invalidated = tuple(sorted(holders))
        unicasts = 2  # request + data/ack
        broadcasts = 0
        if invalidated:
            self.invalidations_sent += len(invalidated)
            if len(invalidated) >= self.broadcast_threshold:
                # One broadcast-bus message invalidates every sharer at once.
                broadcasts = 1
                self.broadcasts_used += 1
                self.unicasts_avoided += len(invalidated) - 1
            else:
                unicasts += len(invalidated)

        data_from_owner = entry.owner if entry.owner not in (None, requester) else None
        entry.state = DirectoryState.EXCLUSIVE
        entry.owner = requester
        entry.sharers = set()
        return CoherenceAction(
            requester_state=MoesiState.MODIFIED,
            unicast_messages=unicasts,
            broadcast_messages=broadcasts,
            invalidated_clusters=invalidated,
            data_from_memory=data_from_owner is None and not invalidated,
            data_from_owner=data_from_owner,
        )

    def handle_eviction(self, address: int, cluster: int, dirty: bool) -> int:
        """A cluster evicts its copy; returns the number of messages generated."""
        entry = self._entry(address)
        messages = 1  # notification / writeback
        if entry.owner == cluster:
            entry.owner = None
            if not entry.sharers:
                entry.state = DirectoryState.UNCACHED
            else:
                entry.state = DirectoryState.SHARED
        else:
            entry.sharers.discard(cluster)
            if not entry.sharers and entry.owner is None:
                entry.state = DirectoryState.UNCACHED
        if dirty:
            messages += 1  # data writeback to memory
        return messages

    # -- reporting ----------------------------------------------------------------
    def sharer_histogram(self) -> Dict[int, int]:
        """Distribution of sharer counts across tracked lines."""
        histogram: Dict[int, int] = {}
        for entry in self.entries.values():
            count = len(entry.holders())
            histogram[count] = histogram.get(count, 0) + 1
        return histogram

    def broadcast_savings(self) -> int:
        """Unicast messages avoided thanks to the broadcast bus."""
        return self.unicasts_avoided
