"""Miss-status holding registers (MSHRs) with request coalescing.

The cluster L2 tracks its outstanding misses in an MSHR file: a new miss to a
line that already has an outstanding request is *coalesced* onto the existing
entry instead of generating a second network transaction.  The file has a
finite number of entries; when it is full the L2 stops accepting new misses,
which is one of the back-pressure mechanisms the paper's simulator enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class MshrEntry:
    """One outstanding miss."""

    line_address: int
    is_write: bool
    issue_time: float
    waiting_threads: List[int] = field(default_factory=list)

    def merge(self, thread_id: int, is_write: bool) -> None:
        """Coalesce another miss to the same line onto this entry."""
        self.waiting_threads.append(thread_id)
        self.is_write = self.is_write or is_write

    @property
    def coalesced_count(self) -> int:
        return len(self.waiting_threads)


class MshrFile:
    """A finite file of MSHR entries with coalescing."""

    def __init__(self, name: str, entries: int, line_bytes: int = 64) -> None:
        if entries < 1:
            raise ValueError(f"MSHR file needs at least one entry, got {entries}")
        if line_bytes <= 0:
            raise ValueError(f"line size must be positive, got {line_bytes}")
        self.name = name
        self.capacity = entries
        self.line_bytes = line_bytes
        self._entries: Dict[int, MshrEntry] = {}
        self.allocations = 0
        self.coalesced = 0
        self.rejections = 0

    def _line(self, address: int) -> int:
        return address // self.line_bytes

    @property
    def outstanding(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def lookup(self, address: int) -> Optional[MshrEntry]:
        return self._entries.get(self._line(address))

    def allocate(
        self, address: int, thread_id: int, is_write: bool, now: float
    ) -> Optional[MshrEntry]:
        """Allocate (or coalesce onto) an entry for a miss.

        Returns the entry, or ``None`` if the file is full and the miss must
        be retried (back-pressure).  A returned entry with
        ``coalesced_count > 1`` means no new network request is needed.
        """
        line = self._line(address)
        entry = self._entries.get(line)
        if entry is not None:
            entry.merge(thread_id, is_write)
            self.coalesced += 1
            return entry
        if self.full:
            self.rejections += 1
            return None
        entry = MshrEntry(
            line_address=line,
            is_write=is_write,
            issue_time=now,
            waiting_threads=[thread_id],
        )
        self._entries[line] = entry
        self.allocations += 1
        return entry

    def release(self, address: int) -> MshrEntry:
        """Retire the entry for ``address`` when its fill returns."""
        line = self._line(address)
        if line not in self._entries:
            raise KeyError(f"no outstanding MSHR for address {address:#x}")
        return self._entries.pop(line)

    def outstanding_lines(self) -> List[int]:
        return sorted(self._entries)

    def coalescing_rate(self) -> float:
        """Fraction of misses that were merged onto an existing entry."""
        total = self.allocations + self.coalesced
        if total == 0:
            return 0.0
        return self.coalesced / total
