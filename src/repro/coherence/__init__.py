"""Coherence traffic subsystem: sharing-aware traces + timed MOESI actions.

Ties three previously independent pieces into the replay engine:

* :mod:`repro.cache.coherence` -- the functional MOESI directory protocol;
* :mod:`repro.network.broadcast` -- the optical broadcast bus that delivers
  invalidations in one message on photonic configurations;
* :mod:`repro.core.system` -- the trace-driven transaction engine, which
  consults the home directory for every *shared* miss and schedules the
  resulting cache-to-cache forwards, invalidation fan-outs and dirty
  writebacks as resource-reserving events.

See :class:`~repro.coherence.sharing.SharingProfile` for tagging a fraction
of a synthetic workload's misses as shared, and
:class:`~repro.coherence.engine.CoherenceConfig` for enabling the timed
protocol on a :class:`~repro.core.system.SystemSimulator`.
"""

from repro.coherence.engine import (
    CoherenceConfig,
    CoherenceEngine,
    CoherenceStats,
    CoherentMiss,
)
from repro.coherence.sharing import (
    SHARED_REGION_BIT,
    SharingProfile,
    home_for_line,
    shared_line_address,
)

__all__ = [
    "CoherenceConfig",
    "CoherenceEngine",
    "CoherenceStats",
    "CoherentMiss",
    "SharingProfile",
    "SHARED_REGION_BIT",
    "home_for_line",
    "shared_line_address",
]
