"""Sharing-aware address generation for coherence-enabled workloads.

The Corona paper models a 256-core shared-memory CMP kept coherent by a MOESI
directory protocol (Section 3.1.2).  The replay engine's traces are L2-miss
streams; to exercise the coherence protocol the trace generator must know
which addresses are *shared* -- touched by threads of many clusters -- and
which are private.  A :class:`SharingProfile` describes that split:

* a **fraction** of misses target a global pool of shared lines instead of
  the workload's private per-thread address space;
* the pool has a fixed number of lines whose popularity follows a Zipf-like
  distribution, so a few lines are touched by most clusters (widely shared
  data: locks, reduction variables) while the tail is touched by few -- this
  is what produces a *sharer-set distribution* at the directory rather than a
  single sharer count;
* shared misses have their own write fraction (read-mostly sharing grows
  sharer sets before a write invalidates them; write-heavy sharing behaves
  like migratory data).

Shared lines live in a dedicated address region (bit :data:`SHARED_REGION_BIT`
set) so they can never alias the synthetic private addresses, and each line's
home cluster is derived from the line index so the home mapping is consistent
between the trace record and the address bits.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass
from typing import List

#: Address bit marking the shared region (above every private synthetic
#: address, which occupies bits [6, 32) -- see ``SyntheticWorkload.generate``).
SHARED_REGION_BIT = 1 << 40

#: Cache-line size used for shared-line addresses (Table 1).
LINE_BYTES = 64


@dataclass(frozen=True)
class SharingProfile:
    """How a workload's misses are split between private and shared lines.

    Parameters
    ----------
    fraction:
        Fraction of misses that target the shared pool (0 disables sharing
        and leaves trace generation bit-identical to the non-sharing path).
    num_lines:
        Size of the shared-line pool.
    zipf_s:
        Popularity skew of the pool: line ``i`` is drawn with weight
        ``1 / (i + 1) ** zipf_s``.  ``0`` gives a uniform pool (small sharer
        sets); larger values concentrate accesses on a few widely shared
        lines (large sharer sets, the broadcast bus's target case).
    write_fraction:
        Fraction of shared misses that are writes (GetM).  Low values let
        sharer sets grow before an invalidation; high values approximate
        migratory data.
    """

    fraction: float = 0.0
    num_lines: int = 512
    zipf_s: float = 0.8
    write_fraction: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(
                f"sharing fraction must be in [0, 1], got {self.fraction}"
            )
        if self.num_lines < 1:
            raise ValueError(
                f"shared pool needs at least one line, got {self.num_lines}"
            )
        if self.zipf_s < 0:
            raise ValueError(f"zipf skew must be non-negative, got {self.zipf_s}")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError(
                f"shared write fraction must be in [0, 1], got "
                f"{self.write_fraction}"
            )

    @property
    def enabled(self) -> bool:
        return self.fraction > 0.0

    @classmethod
    def from_dict(cls, data) -> "SharingProfile":
        """Build a profile from a mapping of field names.

        Unknown keys raise a :class:`ValueError` naming the key -- scenario
        files route their ``sharing`` blocks through here so a typo fails
        with the offending field instead of a bare ``TypeError``.
        """
        known = ("fraction", "num_lines", "zipf_s", "write_fraction")
        unknown = set(data) - set(known)
        if unknown:
            raise ValueError(
                f"unknown SharingProfile field {sorted(unknown)[0]!r}; "
                f"known: {list(known)}"
            )
        return cls(**dict(data))

    def cumulative_weights(self) -> List[float]:
        """Cumulative (unnormalized) Zipf weights over the pool, for bisect."""
        total = 0.0
        cumulative: List[float] = []
        for index in range(self.num_lines):
            total += 1.0 / (index + 1) ** self.zipf_s
            cumulative.append(total)
        return cumulative

    def draw_line(self, rng: random.Random, cumulative: List[float]) -> int:
        """Draw a shared line index according to the popularity distribution."""
        return bisect_left(cumulative, rng.random() * cumulative[-1])


def default_sharing_profile() -> SharingProfile:
    """A generic moderately-shared profile (``sharing: "default"`` in
    scenario files for workloads without a calibrated per-benchmark profile;
    SPLASH-2 models carry their own, see
    :data:`repro.trace.splash2.SPLASH2_SHARING_PROFILES`)."""
    return SharingProfile(fraction=0.3)


def resolve_sharing(sharing, default_factory) -> "SharingProfile | None":
    """Normalize a workload's ``sharing`` parameter to a profile (or None).

    Accepts a :class:`SharingProfile`, ``None``, the string ``"default"``
    (resolved via ``default_factory``) or a mapping of profile fields --
    the forms a scenario file can carry -- and rejects anything else with a
    :class:`ValueError`, so a misplaced value fails at workload construction
    (where scenario validation sees it) rather than mid-generation.
    """
    if sharing is None or isinstance(sharing, SharingProfile):
        return sharing
    if isinstance(sharing, str):
        if sharing != "default":
            raise ValueError(
                f"sharing must be a SharingProfile, a mapping of its fields, "
                f"None or 'default', got {sharing!r}"
            )
        return default_factory()
    try:
        items = dict(sharing)
    except (TypeError, ValueError):
        raise ValueError(
            f"sharing must be a SharingProfile, a mapping of its fields, "
            f"None or 'default', got {type(sharing).__name__}"
        ) from None
    return SharingProfile.from_dict(items)


def home_for_line(line: int, num_clusters: int) -> int:
    """Home cluster of shared line ``line`` (round-robin across clusters)."""
    return line % num_clusters


def shared_line_address(line: int, num_clusters: int) -> int:
    """Physical address of shared line ``line``.

    The home cluster is encoded in the same bit positions the synthetic
    private addresses use (bits 26+), with :data:`SHARED_REGION_BIT` on top so
    shared and private lines can never alias.
    """
    home = home_for_line(line, num_clusters)
    return SHARED_REGION_BIT | (home << 26) | (line * LINE_BYTES)
