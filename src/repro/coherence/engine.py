"""The timed coherence traffic engine.

:mod:`repro.cache.coherence` implements the MOESI directory protocol
functionally: it tracks per-line directory state and says which messages each
transition requires.  This module makes those messages *cost time and
resources* inside the replay engine: each shared L2 miss consults the home
cluster's directory, and the resulting protocol actions become reservations
on the same interconnect and memory models the plain request/response traffic
uses:

* **invalidation fan-out** -- on photonic configurations a single message on
  the :class:`~repro.network.broadcast.OpticalBroadcastBus` reaches every
  sharer (Section 3.2.2); on the electrical baselines each sharer costs one
  unicast ``INVALIDATE`` reserving mesh links / crossbar channels;
* **cache-to-cache forwards** -- when a dirty owner exists, the home forwards
  the request to the owner (control message) and the owner supplies the line
  to the requester (data message on the response leg), bypassing memory;
* **dirty writebacks** -- a write that strips an Owned/Modified copy makes
  the previous owner write the line back to home memory, off the requester's
  critical path but reserving interconnect and memory-controller resources.

The engine is deliberately analytic, like the rest of the replay: every
protocol leg is resolved to absolute times via resource reservations the
moment the directory acts, and only the off-critical-path writeback needs an
extra calendar event (scheduled by the caller so memory reservations stay in
global time order).  A write's response is gated on invalidation delivery
(the directory collects acknowledgements before answering), which is what
makes the photonic-vs-electrical invalidation cost visible in miss latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, NamedTuple, Optional, Sequence

from repro.cache.coherence import CoherenceController
from repro.network.broadcast import OpticalBroadcastBus
from repro.network.message import Message, MessageType
from repro.sim.stats import RunningStats

#: Threshold that never triggers a broadcast (electrical configurations).
_NEVER_BROADCAST = 1 << 30


@dataclass(frozen=True)
class CoherenceConfig:
    """Knobs of the coherence traffic subsystem.

    Parameters
    ----------
    broadcast_threshold:
        Minimum sharer count at which an invalidation uses the broadcast bus
        instead of per-sharer unicasts (only on configurations that have the
        bus; Section 3.2.2 argues for a small threshold).
    directory_latency_s:
        Directory lookup/update latency at the home cluster, charged before
        any protocol action.
    owner_l2_latency_s:
        L2 read latency at the owning cluster before a cache-to-cache
        forward leaves it.
    """

    broadcast_threshold: int = 4
    directory_latency_s: float = 1e-9
    owner_l2_latency_s: float = 2e-9

    def __post_init__(self) -> None:
        if self.broadcast_threshold < 1:
            raise ValueError(
                f"broadcast threshold must be >= 1, got {self.broadcast_threshold}"
            )
        if self.directory_latency_s < 0 or self.owner_l2_latency_s < 0:
            raise ValueError("coherence latencies must be non-negative")


class CoherentMiss(NamedTuple):
    """Resolved timing of one shared miss's coherence activity.

    Produced by :meth:`CoherenceEngine.process_miss` at the home cluster and
    consumed by the replay's coherent response handler.  ``writeback_time``
    is ``None`` when the miss strips no dirty copy.
    """

    #: Time the directory acted (arrival at home plus directory latency).
    t_dir: float
    #: Cluster that supplies the response (owner for cache-to-cache, else home).
    response_src: int
    #: When the response may leave ``response_src`` (data ready AND
    #: invalidations delivered).
    response_ready: float
    memory_queueing: float
    memory_latency: float
    #: Queueing/network/hops/messages of the extra coherence legs (forward,
    #: invalidation fan-out), folded into the transaction's statistics.
    extra_queueing: float
    extra_network: float
    extra_hops: int
    extra_messages: int
    #: Whether the response carries a cache line (data) or is a control ack.
    carries_data: bool
    #: Whether the data comes from a remote owner's cache.
    is_c2c: bool
    #: When the stripped owner's dirty line arrives at home memory, or None.
    writeback_time: Optional[float]


class CoherenceStats:
    """Aggregate counters of the coherence subsystem for one replay."""

    __slots__ = (
        "shared_reads",
        "shared_writes",
        "invalidations_sent",
        "broadcasts_used",
        "unicast_invalidations",
        "c2c_transfers",
        "dirty_writebacks",
        "invalidation_latency",
        "c2c_latency",
    )

    def __init__(self) -> None:
        self.shared_reads = 0
        self.shared_writes = 0
        #: Total clusters invalidated (regardless of delivery mechanism).
        self.invalidations_sent = 0
        self.broadcasts_used = 0
        #: Unicast INVALIDATE messages actually sent on the interconnect.
        self.unicast_invalidations = 0
        self.c2c_transfers = 0
        self.dirty_writebacks = 0
        #: Per invalidating write: delivery time of the slowest invalidation.
        self.invalidation_latency = RunningStats("invalidation-latency")
        #: Per cache-to-cache transfer: directory action to data arrival.
        self.c2c_latency = RunningStats("c2c-latency")

    @property
    def shared_requests(self) -> int:
        return self.shared_reads + self.shared_writes


class CoherenceEngine:
    """Directory consultation and coherence-action timing for the replay.

    One instance per :class:`~repro.core.system.SystemSimulator` run.  The
    engine owns one :class:`CoherenceController` directory per home cluster
    and borrows the simulator's interconnect, memory controllers and hub
    latencies; it never touches the event calendar itself.
    """

    __slots__ = (
        "config",
        "num_clusters",
        "network",
        "controllers",
        "hub_fwd",
        "broadcast_bus",
        "directories",
        "stats",
        "_msg_invalidate",
        "_msg_forward",
        "_msg_writeback",
    )

    def __init__(
        self,
        config: CoherenceConfig,
        num_clusters: int,
        network,
        controllers: Sequence,
        hub_fwd: Sequence[float],
        broadcast_bus: Optional[OpticalBroadcastBus] = None,
    ) -> None:
        self.config = config
        self.num_clusters = num_clusters
        self.network = network
        self.controllers = controllers
        self.hub_fwd = hub_fwd
        self.broadcast_bus = broadcast_bus
        threshold = (
            config.broadcast_threshold if broadcast_bus is not None else _NEVER_BROADCAST
        )
        self.directories: List[CoherenceController] = [
            CoherenceController(home_cluster=cluster, broadcast_threshold=threshold)
            for cluster in range(num_clusters)
        ]
        self.stats = CoherenceStats()
        # Reusable messages, mutated in place like the replay's own request/
        # response messages (the interconnects never retain them).
        self._msg_invalidate = Message(0, 1, MessageType.INVALIDATE)
        self._msg_forward = Message(0, 1, MessageType.COHERENCE)
        self._msg_writeback = Message(0, 1, MessageType.WRITEBACK)

    # ------------------------------------------------------------- protocol
    def process_miss(
        self,
        home: int,
        requester: int,
        is_write: bool,
        address: int,
        size_bytes: int,
        now: float,
    ) -> CoherentMiss:
        """Resolve the coherence activity of one shared miss arriving at its
        home cluster at ``now``; returns the timing the response stage needs.

        Takes the miss's fields as plain scalars (decoded by the replay from
        the packed meta word) rather than a record object, so the coherent
        path allocates nothing per miss either.
        """
        stats = self.stats
        config = self.config
        t_dir = now + config.directory_latency_s

        directory = self.directories[home]
        if is_write:
            stats.shared_writes += 1
            action = directory.handle_write(address, requester)
        else:
            stats.shared_reads += 1
            action = directory.handle_read(address, requester)

        extra_queueing = 0.0
        extra_network = 0.0
        extra_hops = 0
        extra_messages = 0

        # -- invalidation fan-out ------------------------------------------
        inval_done = t_dir
        invalidated = action.invalidated_clusters
        if invalidated:
            stats.invalidations_sent += len(invalidated)
            if action.broadcast_messages:
                # One broadcast-bus message reaches every sharer at once.
                result = self.broadcast_bus.broadcast_invalidate(
                    src=home, sharers=len(invalidated), now=t_dir
                )
                inval_done = result.arrival_time
                stats.broadcasts_used += 1
                extra_messages += 1
            else:
                remote = [dst for dst in invalidated if dst != home]
                if remote:
                    message = self._msg_invalidate
                    message.src = home
                    result = self.network.multicast(message, remote, t_dir)
                    inval_done = result.last_arrival
                    stats.unicast_invalidations += result.messages
                    extra_hops += result.hops
                    extra_messages += result.messages
            stats.invalidation_latency.add(inval_done - t_dir)
            extra_network += inval_done - t_dir

        # -- data supply ----------------------------------------------------
        supplier = action.data_from_owner
        writeback_time: Optional[float] = None
        if supplier is not None and supplier != requester:
            # Cache-to-cache: home forwards the request to the owner, the
            # owner reads its L2 and answers on the response leg.
            stats.c2c_transfers += 1
            if supplier == home:
                forward_arrival = t_dir
            else:
                forward = self._msg_forward
                forward.src = home
                forward.dst = supplier
                result = self.network.transfer(forward, t_dir)
                forward_arrival = result.arrival_time
                extra_queueing += result.queueing_delay
                extra_network += result.network_latency
                extra_hops += result.hops
                extra_messages += 1
            data_ready = forward_arrival + config.owner_l2_latency_s
            response_src = supplier
            memory_queueing = 0.0
            memory_latency = 0.0
            carries_data = True
            is_c2c = True
            if is_write:
                # The stripped owner writes its dirty line back to home
                # memory, off the requester's critical path.
                wb_arrival = data_ready
                if supplier != home:
                    writeback = self._msg_writeback
                    writeback.src = supplier
                    writeback.dst = home
                    result = self.network.transfer(writeback, data_ready)
                    wb_arrival = result.arrival_time
                    extra_hops += result.hops
                    extra_messages += 1
                writeback_time = wb_arrival
        elif action.data_from_memory:
            completion, memory_queueing, channel_delay, dram_delay = self.controllers[
                home
            ].access(t_dir, size_bytes, is_write, address)
            data_ready = completion
            response_src = home
            memory_latency = memory_queueing + channel_delay + dram_delay
            carries_data = not is_write
            is_c2c = False
        else:
            # Upgrade or silent refetch: the directory acknowledges without
            # moving data (any invalidations still gate the response).
            data_ready = t_dir
            response_src = home
            memory_queueing = 0.0
            memory_latency = 0.0
            carries_data = False
            is_c2c = False

        response_ready = data_ready if data_ready >= inval_done else inval_done
        return CoherentMiss(
            t_dir=t_dir,
            response_src=response_src,
            response_ready=response_ready,
            memory_queueing=memory_queueing,
            memory_latency=memory_latency,
            extra_queueing=extra_queueing,
            extra_network=extra_network,
            extra_hops=extra_hops,
            extra_messages=extra_messages,
            carries_data=carries_data,
            is_c2c=is_c2c,
            writeback_time=writeback_time,
        )

    def complete_writeback(
        self, home: int, size_bytes: int, address: int, now: float
    ) -> float:
        """Reserve the home memory controller for a dirty writeback at ``now``.

        Called from the calendar event the replay schedules at the writeback's
        arrival time so the memory reservation is made in global time order.
        Returns the writeback's completion time at the controller.
        """
        completion, _, _, _ = self.controllers[home].access(
            now, size_bytes, True, address
        )
        self.stats.dirty_writebacks += 1
        return completion

    def note_c2c_complete(self, miss: CoherentMiss, arrival: float) -> None:
        """Record the end-to-end latency of a cache-to-cache transfer."""
        self.stats.c2c_latency.add(arrival - miss.t_dir)

    # ------------------------------------------------------------- reporting
    def broadcast_occupancy(self, elapsed_s: float) -> float:
        """Fraction of the replay the broadcast bus spent modulating."""
        if self.broadcast_bus is None or elapsed_s <= 0:
            return 0.0
        return self.broadcast_bus.busy_seconds / elapsed_s

    def sharer_histogram(self) -> dict:
        """Sharer-count distribution merged across every home directory."""
        merged: dict = {}
        for directory in self.directories:
            for count, lines in directory.sharer_histogram().items():
                merged[count] = merged.get(count, 0) + lines
        return merged

    def total_directory_invalidations(self) -> int:
        return sum(d.invalidations_sent for d in self.directories)
