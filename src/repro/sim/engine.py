"""A small, fast discrete-event simulation engine.

The engine is a classic event calendar: callbacks scheduled at absolute
simulated times, executed in time order.  Components interact by scheduling
events on a shared :class:`Simulator` and by reading ``simulator.now``.

Design notes
------------
* Events carry an insertion sequence number so ties in time are processed in
  FIFO order, which keeps runs deterministic.
* Events can be cancelled; cancellation is lazy (the heap entry is marked dead
  and skipped on pop), which keeps cancellation O(1).
* The engine deliberately has no notion of processes/coroutines.  The Corona
  models are resource-occupancy models (see :mod:`repro.sim.resources`), and a
  plain callback engine keeps the per-event overhead low enough to replay
  hundreds of thousands of L2-miss transactions in pure Python.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule`; user code normally
    only keeps a reference if it may need to :meth:`cancel` the event.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.3e}, seq={self.seq}, {state})"


class EventQueue:
    """A binary-heap event calendar."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(self, time: float, callback: Callable[..., None], args: tuple) -> Event:
        event = Event(time, self._seq, callback, args)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Pop the next live event, or ``None`` if the calendar is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def discard_cancelled(self, event: Event) -> None:
        """Account for an externally cancelled event."""
        if not event.cancelled:
            raise ValueError("discard_cancelled requires a cancelled event")
        self._live -= 1


class Simulator:
    """The simulation driver.

    Typical use::

        sim = Simulator()
        sim.schedule(10e-9, handler, arg1, arg2)
        sim.run()
        print(sim.now)
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self.now: float = 0.0
        self.events_executed: int = 0
        self._stop_requested = False

    # -- scheduling ---------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self._queue.push(self.now + delay, callback, args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at t={time} before current time {self.now}"
            )
        return self._queue.push(time, callback, args)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        if not event.cancelled:
            event.cancel()
            self._queue.discard_cancelled(event)

    # -- execution ----------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the calendar drains, ``until`` is reached, or ``max_events``.

        ``until`` is an absolute simulated time; events scheduled exactly at
        ``until`` are executed.
        """
        self._stop_requested = False
        executed_this_run = 0
        while True:
            if self._stop_requested:
                break
            if max_events is not None and executed_this_run >= max_events:
                break
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = until
                break
            event = self._queue.pop()
            if event is None:  # pragma: no cover - peek_time already guards
                break
            self.now = event.time
            event.callback(*event.args)
            self.events_executed += 1
            executed_this_run += 1

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stop_requested = True

    def pending_events(self) -> int:
        """Number of live events still on the calendar."""
        return len(self._queue)
