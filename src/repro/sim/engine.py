"""A small, fast discrete-event simulation engine.

The engine is a classic event calendar: callbacks scheduled at absolute
simulated times, executed in time order.  Components interact by scheduling
events on a shared :class:`Simulator` and by reading ``simulator.now``.

Design notes
------------
* Heap entries are plain tuples ``(time, seq, callback, args)``.  Tuple
  comparison happens entirely in C (time first, then the insertion sequence
  number), so ordering ties in time are processed in FIFO order without any
  Python-level ``__lt__`` calls, which keeps runs deterministic *and* cheap:
  the per-event cost is one tuple allocation instead of an object with five
  attribute stores plus hundreds of thousands of interpreted comparisons.
* Events can be cancelled; cancellation is a side-table of sequence numbers
  (O(1) to cancel).  Dead entries stay in the heap and are dropped when they
  reach the head; :meth:`EventQueue.pop` and :meth:`EventQueue.peek_time`
  share the same dead-entry skipping.
* The engine deliberately has no notion of processes/coroutines.  The Corona
  models are resource-occupancy models (see :mod:`repro.sim.resources`), and a
  plain callback engine keeps the per-event overhead low enough to replay
  hundreds of thousands of L2-miss transactions in pure Python.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Set, Tuple

#: A scheduled callback: ``(time, seq, callback, args)``.  User code treats
#: handles as opaque; keep one only if the event may need to be cancelled.
Event = Tuple[float, int, Callable[..., None], tuple]


class EventQueue:
    """A binary-heap event calendar over tuple entries.

    Entries returned by :meth:`push` are the heap tuples themselves, so
    popping returns the identical object that was pushed.  Cancellation is
    recorded in a sequence-number side-table; cancelling an entry that has
    already been popped is not supported.
    """

    __slots__ = ("_heap", "_cancelled", "_seq")

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._cancelled: Set[int] = set()
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap) - len(self._cancelled)

    def push(self, time: float, callback: Callable[..., None], args: tuple) -> Event:
        entry = (time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, entry)
        return entry

    def cancel(self, entry: Event) -> None:
        """Mark the entry dead; it will be skipped when it reaches the head.

        Idempotent: cancelling the same pending entry twice is a no-op.
        """
        self._cancelled.add(entry[1])

    def is_cancelled(self, entry: Event) -> bool:
        return entry[1] in self._cancelled

    def _drop_dead(self) -> None:
        """Discard cancelled entries at the head (shared by pop/peek)."""
        heap = self._heap
        cancelled = self._cancelled
        while heap and heap[0][1] in cancelled:
            cancelled.discard(heapq.heappop(heap)[1])

    def pop(self) -> Optional[Event]:
        """Pop the next live event, or ``None`` if the calendar is empty."""
        self._drop_dead()
        if not self._heap:
            return None
        return heapq.heappop(self._heap)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event without removing it."""
        self._drop_dead()
        if not self._heap:
            return None
        return self._heap[0][0]


class Simulator:
    """The simulation driver.

    Typical use::

        sim = Simulator()
        sim.schedule(10e-9, handler, arg1, arg2)
        sim.run()
        print(sim.now)
    """

    __slots__ = ("_queue", "now", "events_executed", "_stop_requested")

    def __init__(self) -> None:
        self._queue = EventQueue()
        self.now: float = 0.0
        self.events_executed: int = 0
        self._stop_requested = False

    # -- scheduling ---------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self._queue.push(self.now + delay, callback, args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at t={time} before current time {self.now}"
            )
        return self._queue.push(time, callback, args)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled (and not yet executed) event."""
        self._queue.cancel(event)

    # -- execution ----------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the calendar drains, ``until`` is reached, or ``max_events``.

        ``until`` is an absolute simulated time; events scheduled exactly at
        ``until`` are executed.
        """
        self._stop_requested = False
        # The hot loop touches the heap and the cancellation table directly;
        # everything invariant is bound to locals, and the optional bounds are
        # normalized so the loop pays one comparison for each instead of a
        # None check plus a comparison.
        heap = self._queue._heap
        cancelled = self._queue._cancelled
        heappop = heapq.heappop
        time_bound = float("inf") if until is None else until
        event_bound = -1 if max_events is None else max_events
        executed = 0
        try:
            while heap:
                if self._stop_requested:
                    break
                if executed == event_bound:
                    break
                entry = heap[0]
                if cancelled:
                    seq = entry[1]
                    if seq in cancelled:
                        heappop(heap)
                        cancelled.discard(seq)
                        continue
                time = entry[0]
                if time > time_bound:
                    self.now = until
                    break
                heappop(heap)
                self.now = time
                entry[2](*entry[3])
                executed += 1
        finally:
            self.events_executed += executed

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stop_requested = True

    def pending_events(self) -> int:
        """Number of live events still on the calendar."""
        return len(self._queue)
