"""Units and conversions used throughout the Corona reproduction.

All simulation time is kept in *seconds* (floats).  All data sizes are kept in
*bytes* unless a name explicitly says bits.  Bandwidth is bytes per second.
The constants below exist so that configuration code reads like the paper:
``5 * GHZ``, ``20 * TBPS``, ``64 * BYTE`` and so on.

The module also provides tiny value helpers (``cycles_to_seconds``) and thin
``NamedTuple``-style wrappers (:class:`Time`, :class:`Frequency`,
:class:`Bandwidth`) for the places where carrying the unit with the value makes
interfaces clearer -- most of the code simply uses plain floats with the
conventions above.
"""

from __future__ import annotations

from dataclasses import dataclass

# ---------------------------------------------------------------------------
# Time units (seconds)
# ---------------------------------------------------------------------------
SECOND = 1.0
MS = 1e-3
US = 1e-6
NS = 1e-9
PS = 1e-12

# ---------------------------------------------------------------------------
# Frequency units (hertz)
# ---------------------------------------------------------------------------
HZ = 1.0
KHZ = 1e3
MHZ = 1e6
GHZ = 1e9

# ---------------------------------------------------------------------------
# Data size units (bytes)
# ---------------------------------------------------------------------------
BIT = 1.0 / 8.0
BYTE = 1.0
KB = 1024.0
MB = 1024.0 * KB
GB = 1024.0 * MB
TB = 1024.0 * GB

#: Size of a Corona cache line (Table 1 of the paper).
CACHE_LINE_BYTES = 64

# ---------------------------------------------------------------------------
# Bandwidth units (bytes per second).  The paper uses decimal prefixes for
# bandwidth (10 Gb/s signalling, 20 TB/s aggregate), so bandwidth constants are
# decimal while storage-capacity constants above are binary.
# ---------------------------------------------------------------------------
BPS = 1.0 / 8.0
GBPS = 1e9
TBPS = 1e12
GBITPS = 1e9 / 8.0


def bytes_to_bits(num_bytes: float) -> float:
    """Convert a byte count to bits."""
    return num_bytes * 8.0


def bits_to_bytes(num_bits: float) -> float:
    """Convert a bit count to bytes."""
    return num_bits / 8.0


def cycles_to_seconds(cycles: float, frequency_hz: float) -> float:
    """Convert a cycle count at ``frequency_hz`` into seconds."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return cycles / frequency_hz


def seconds_to_cycles(seconds: float, frequency_hz: float) -> float:
    """Convert a duration in seconds into (fractional) cycles."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return seconds * frequency_hz


def transfer_time(num_bytes: float, bandwidth_bytes_per_s: float) -> float:
    """Serialization time of ``num_bytes`` over a channel of the given bandwidth."""
    if bandwidth_bytes_per_s <= 0:
        raise ValueError(
            f"bandwidth must be positive, got {bandwidth_bytes_per_s}"
        )
    if num_bytes < 0:
        raise ValueError(f"byte count must be non-negative, got {num_bytes}")
    return num_bytes / bandwidth_bytes_per_s


@dataclass(frozen=True)
class Time:
    """A duration carrying its own unit (seconds)."""

    seconds: float

    @classmethod
    def from_ns(cls, value: float) -> "Time":
        return cls(value * NS)

    @classmethod
    def from_cycles(cls, cycles: float, frequency_hz: float) -> "Time":
        return cls(cycles_to_seconds(cycles, frequency_hz))

    @property
    def ns(self) -> float:
        return self.seconds / NS

    @property
    def us(self) -> float:
        return self.seconds / US

    def cycles(self, frequency_hz: float) -> float:
        return seconds_to_cycles(self.seconds, frequency_hz)

    def __add__(self, other: "Time") -> "Time":
        return Time(self.seconds + other.seconds)

    def __sub__(self, other: "Time") -> "Time":
        return Time(self.seconds - other.seconds)

    def __lt__(self, other: "Time") -> bool:
        return self.seconds < other.seconds

    def __le__(self, other: "Time") -> bool:
        return self.seconds <= other.seconds


@dataclass(frozen=True)
class Frequency:
    """A clock frequency in hertz with convenience accessors."""

    hertz: float

    @classmethod
    def from_ghz(cls, value: float) -> "Frequency":
        return cls(value * GHZ)

    @property
    def ghz(self) -> float:
        return self.hertz / GHZ

    @property
    def period(self) -> Time:
        """One clock period."""
        if self.hertz <= 0:
            raise ValueError("frequency must be positive to have a period")
        return Time(1.0 / self.hertz)

    def cycles(self, seconds: float) -> float:
        return seconds_to_cycles(seconds, self.hertz)


@dataclass(frozen=True)
class Bandwidth:
    """A bandwidth in bytes per second with convenience accessors."""

    bytes_per_second: float

    @classmethod
    def from_tbps(cls, value: float) -> "Bandwidth":
        """Construct from terabytes per second (decimal)."""
        return cls(value * TBPS)

    @classmethod
    def from_gbps(cls, value: float) -> "Bandwidth":
        """Construct from gigabytes per second (decimal)."""
        return cls(value * GBPS)

    @classmethod
    def from_gbit_per_s(cls, value: float) -> "Bandwidth":
        """Construct from gigabits per second (decimal)."""
        return cls(value * GBITPS)

    @property
    def tbps(self) -> float:
        return self.bytes_per_second / TBPS

    @property
    def gbps(self) -> float:
        return self.bytes_per_second / GBPS

    @property
    def gbit_per_s(self) -> float:
        return self.bytes_per_second / GBITPS

    def transfer_time(self, num_bytes: float) -> float:
        """Seconds needed to move ``num_bytes`` at this bandwidth."""
        return transfer_time(num_bytes, self.bytes_per_second)

    def __mul__(self, factor: float) -> "Bandwidth":
        return Bandwidth(self.bytes_per_second * factor)

    __rmul__ = __mul__
