"""Resource-occupancy primitives for bandwidth, ports and queues.

The Corona network study is a contention study: requests compete for channel
bandwidth, mesh links, memory-controller ports and DRAM banks.  Rather than
simulating each cycle of each wire, the models reserve time on *serial
resources*.  A serial resource maintains, per server, the set of busy
intervals already committed; a reservation of ``duration`` seconds requested
at time ``t`` is granted in the earliest gap of sufficient length starting at
or after ``t``.  This captures serialization delay, queueing delay and
utilization, and -- because reservations may *backfill* earlier idle gaps --
it stays accurate even when reservations are requested slightly out of time
order (for example a data-return reserved 20 ns ahead of commands that arrive
in between).

:class:`BoundedQueue` adds finite capacity (back-pressure) on top, and
:class:`TokenPool` models a counted resource such as MSHRs.
"""

from __future__ import annotations

import bisect
import heapq
from typing import List, Optional

#: Gaps shorter than this are considered zero (floating-point noise guard).
_EPSILON = 1e-15

#: Committed intervals that ended this long before the newest request time are
#: dropped.  Future reservation requests may be out of order with respect to
#: past ones by at most the latency of an in-flight transaction, which is far
#: below this horizon in every Corona configuration.
_PRUNE_HORIZON = 5e-6


class SerialResource:
    """A resource with a fixed number of identical servers and gap backfill.

    With ``servers=1`` this is a single channel/link; with ``servers=n`` it is
    an ``n``-ported resource (for example a DRAM die with several independent
    banks).
    """

    __slots__ = (
        "name",
        "servers",
        "_starts",
        "_ends",
        "busy_time",
        "reservations",
        "_high_water_request",
        "scan_steps",
        "_skip_lo",
        "_skip_hi",
        "_skip_len",
    )

    def __init__(self, name: str, servers: int = 1) -> None:
        if servers < 1:
            raise ValueError(f"servers must be >= 1, got {servers}")
        self.name = name
        self.servers = servers
        # Per server: parallel lists of interval starts and ends, sorted.
        self._starts: List[List[float]] = [[] for _ in range(servers)]
        self._ends: List[List[float]] = [[] for _ in range(servers)]
        self.busy_time: float = 0.0
        self.reservations: int = 0
        self._high_water_request: float = 0.0
        #: Interval-test count across all backfill scans (perf regression
        #: hook: a congested resource must not rescan its whole timeline
        #: on every reservation).
        self.scan_steps: int = 0
        # Proven-gap window for the single-server backfill scan: every free
        # gap whose start lies in [_skip_lo, _skip_hi) was proven too short
        # for a reservation of _skip_len seconds (or longer), so a scan for
        # duration >= _skip_len starting inside the window may jump straight
        # to _skip_hi.  Sound because committed intervals only shrink gaps;
        # pruning -- the one operation that merges gaps -- advances _skip_lo
        # past the merged region (see reserve/next_available).
        self._skip_lo: float = 0.0
        self._skip_hi: float = 0.0
        self._skip_len: float = 0.0

    # -- internal helpers ----------------------------------------------------
    def _prune(self, server: int, before: float) -> None:
        ends = self._ends[server]
        starts = self._starts[server]
        index = bisect.bisect_right(ends, before)
        if index:
            del ends[:index]
            del starts[:index]

    def _find_gap(self, server: int, now: float, duration: float) -> float:
        """Earliest start >= ``now`` of a free gap of ``duration`` on ``server``."""
        starts = self._starts[server]
        ends = self._ends[server]
        candidate = now
        # Skip intervals that end at or before the candidate start.
        index = bisect.bisect_right(ends, candidate)
        while index < len(starts):
            self.scan_steps += 1
            if candidate + duration <= starts[index] + _EPSILON:
                return candidate
            candidate = max(candidate, ends[index])
            index += 1
        return candidate

    # -- proven-gap window (single-server backfill scan) ---------------------
    def _record_skip_window(self, lo: float, hi: float, duration: float) -> None:
        """A scan for ``duration`` just advanced from ``lo`` to ``hi``: every
        free gap starting in ``[lo, hi)`` is too short for ``duration``
        (gap adequacy is monotone in the candidate position, so positions
        between visited interval ends are covered too)."""
        old_lo, old_hi, old_len = self._skip_lo, self._skip_hi, self._skip_len
        if old_hi <= old_lo:
            # No live window.
            self._skip_lo, self._skip_hi, self._skip_len = lo, hi, duration
        elif lo >= old_lo and hi <= old_hi and duration >= old_len:
            # Already covered by a claim at least as strong.
            return
        elif lo <= old_hi and old_lo <= hi:
            # Overlapping/adjacent: merge.  The union holds only for
            # durations covered by both claims, hence the max.
            self._skip_lo = old_lo if old_lo < lo else lo
            self._skip_hi = old_hi if old_hi > hi else hi
            self._skip_len = old_len if old_len > duration else duration
        elif hi > old_hi:
            # Disjoint and ahead of the old window: scans move forward in
            # time, so the newer window is the useful one.
            self._skip_lo, self._skip_hi, self._skip_len = lo, hi, duration

    def _prune_skip_window(self, starts: List[float]) -> None:
        """Pruning merged every gap before the (new) first interval into one
        open stretch, voiding proofs there; claims at or beyond the first
        remaining interval's start are untouched by deleting earlier ones."""
        if starts:
            if self._skip_lo < starts[0]:
                self._skip_lo = starts[0]
        else:
            self._skip_hi = self._skip_lo  # empty timeline: no proofs survive

    def _insert(self, server: int, start: float, end: float) -> None:
        starts = self._starts[server]
        ends = self._ends[server]
        # Tail fast path: most reservations are requested roughly in time
        # order, so they land after every committed interval.
        if not starts:
            starts.append(start)
            ends.append(end)
            return
        if start > starts[-1]:
            if ends[-1] >= start - _EPSILON:
                if end > ends[-1]:
                    ends[-1] = end
            else:
                starts.append(start)
                ends.append(end)
            return
        index = bisect.bisect_left(starts, start)
        # Coalesce with the previous interval when contiguous.
        if index > 0 and ends[index - 1] >= start - _EPSILON:
            ends[index - 1] = max(ends[index - 1], end)
            merged_index = index - 1
        else:
            starts.insert(index, start)
            ends.insert(index, end)
            merged_index = index
        # Coalesce with following intervals swallowed by the new one.
        next_index = merged_index + 1
        while next_index < len(starts) and starts[next_index] <= ends[merged_index] + _EPSILON:
            ends[merged_index] = max(ends[merged_index], ends[next_index])
            del starts[next_index]
            del ends[next_index]

    # -- public API ------------------------------------------------------------
    def next_available(self, now: float) -> float:
        """Earliest time a zero-length reservation made at ``now`` could start.

        Mirrors the pruned single-server fast path of :meth:`reserve`:
        expired intervals (older than the prune horizon behind the newest
        reservation request) are dropped first, and because committed
        intervals are kept disjoint by :meth:`_insert`'s coalescing, a single
        bisect answers the query -- ``now`` itself when no interval covers
        it, otherwise the covering interval's end.  Long-running replays
        previously paid a scan over every interval ever committed on
        resources queried through :meth:`queue_delay` but rarely reserved.
        """
        prune_before = self._high_water_request - _PRUNE_HORIZON
        if self.servers == 1:
            starts = self._starts[0]
            ends = self._ends[0]
            if prune_before > 0 and ends and ends[0] <= prune_before:
                cut = bisect.bisect_right(ends, prune_before)
                del ends[:cut]
                del starts[:cut]
                self._prune_skip_window(starts)
            index = bisect.bisect_right(ends, now)
            if index >= len(starts) or now <= starts[index] + _EPSILON:
                return now
            return ends[index]
        best = None
        for server in range(self.servers):
            if prune_before > 0:
                self._prune(server, prune_before)
            starts = self._starts[server]
            ends = self._ends[server]
            index = bisect.bisect_right(ends, now)
            if index >= len(starts) or now <= starts[index] + _EPSILON:
                return now
            if best is None or ends[index] < best:
                best = ends[index]
        return best

    def reserve(self, now: float, duration: float) -> float:
        """Reserve the resource for ``duration`` seconds starting no earlier than ``now``.

        Returns the time at which the reservation *ends* (i.e. when the
        transfer completes).  The start time is ``end - duration``.
        """
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        if now < 0:
            raise ValueError(f"time must be non-negative, got {now}")

        if now > self._high_water_request:
            self._high_water_request = now
        prune_before = self._high_water_request - _PRUNE_HORIZON

        if self.servers == 1:
            # Single-server fast path (links, channels, banks): prune only
            # when something is actually expired, inline the gap search, and
            # insert through the tail fast path of :meth:`_insert`.
            starts = self._starts[0]
            ends = self._ends[0]
            if prune_before > 0 and ends and ends[0] <= prune_before:
                cut = bisect.bisect_right(ends, prune_before)
                del ends[:cut]
                del starts[:cut]
                self._prune_skip_window(starts)
            candidate = now
            index = bisect.bisect_right(ends, candidate)
            if duration >= self._skip_len and self._skip_lo <= candidate < self._skip_hi:
                # Every gap starting in the window was already proven too
                # short for this duration; resume the scan past it.
                candidate = self._skip_hi
                index = bisect.bisect_right(ends, candidate)
            n = len(starts)
            steps = 0
            while index < n:
                if candidate + duration <= starts[index] + _EPSILON:
                    break
                interval_end = ends[index]
                if interval_end > candidate:
                    candidate = interval_end
                index += 1
                steps += 1
            self.scan_steps += steps
            if candidate > now:
                self._record_skip_window(now, candidate, duration)
            end = candidate + duration
            if index >= n:
                # Tail commit, inlined: the reservation lands at or after the
                # last committed interval.
                if n and ends[-1] >= candidate - _EPSILON:
                    if end > ends[-1]:
                        ends[-1] = end
                else:
                    starts.append(candidate)
                    ends.append(end)
            else:
                self._insert(0, candidate, end)
            self.busy_time += duration
            self.reservations += 1
            return end

        best_server = 0
        best_start = None
        for server in range(self.servers):
            if prune_before > 0:
                self._prune(server, prune_before)
            start = self._find_gap(server, now, duration)
            if best_start is None or start < best_start:
                best_server = server
                best_start = start
                if start <= now + _EPSILON:
                    break
        end = best_start + duration
        self._insert(best_server, best_start, end)
        self.busy_time += duration
        self.reservations += 1
        return end

    def queue_delay(self, now: float) -> float:
        """How long a zero-length reservation made at ``now`` would wait."""
        return self.next_available(now) - now

    def utilization(self, elapsed: float) -> float:
        """Fraction of capacity used over ``elapsed`` seconds of simulated time."""
        if elapsed <= 0:
            return 0.0
        return self.busy_time / (elapsed * self.servers)

    def reset(self) -> None:
        self._starts = [[] for _ in range(self.servers)]
        self._ends = [[] for _ in range(self.servers)]
        self.busy_time = 0.0
        self.reservations = 0
        self._high_water_request = 0.0
        self.scan_steps = 0
        self._skip_lo = 0.0
        self._skip_hi = 0.0
        self._skip_len = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SerialResource({self.name!r}, servers={self.servers})"


class BoundedQueue:
    """A finite-capacity FIFO used to model buffers with back-pressure.

    The queue tracks occupancy as a function of time analytically: an entry
    occupies a slot from its enqueue time until its announced departure time.
    ``admission_time`` computes when a new entry could be admitted given the
    capacity limit, which is how upstream senders experience back-pressure.
    """

    __slots__ = ("name", "capacity", "_departures", "total_admitted", "max_occupancy_seen")

    def __init__(self, name: str, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        # Departure times of entries currently considered "in the queue",
        # kept as a min-heap so expiry is amortized O(1) per entry.
        self._departures: List[float] = []
        self.total_admitted: int = 0
        self.max_occupancy_seen: int = 0

    def _expire(self, now: float) -> None:
        departures = self._departures
        while departures and departures[0] <= now:
            heapq.heappop(departures)

    def occupancy(self, now: float) -> int:
        """Number of entries resident at time ``now``."""
        self._expire(now)
        return len(self._departures)

    def admission_time(self, now: float) -> float:
        """Earliest time at which a new entry could be admitted."""
        self._expire(now)
        departures = self._departures
        resident = len(departures)
        if resident < self.capacity:
            return now
        # Must wait for enough departures among resident entries: the entry is
        # admitted when the queue first has a free slot.
        overflow = resident - self.capacity
        if overflow == 0:
            return departures[0]
        return heapq.nsmallest(overflow + 1, departures)[-1]

    def admit(self, now: float, departure_time: float) -> float:
        """Admit an entry that will depart at ``departure_time``.

        Returns the actual admission time (>= ``now``) after back-pressure.
        ``departure_time`` must be no earlier than the admission time.
        """
        admit_at = self.admission_time(now)
        if departure_time < admit_at:
            raise ValueError(
                f"departure {departure_time} precedes admission {admit_at}"
            )
        heapq.heappush(self._departures, departure_time)
        self.total_admitted += 1
        if len(self._departures) > self.max_occupancy_seen:
            self.max_occupancy_seen = len(self._departures)
        return admit_at

    def reset(self) -> None:
        self._departures = []
        self.total_admitted = 0
        self.max_occupancy_seen = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BoundedQueue({self.name!r}, capacity={self.capacity})"


class TokenPool:
    """A counted resource (e.g. MSHRs): acquire blocks until a token frees up.

    Like :class:`BoundedQueue`, the pool is analytic: each outstanding token is
    represented by its release time, and acquisitions made when the pool is
    exhausted are granted at the earliest release time.
    """

    __slots__ = ("name", "tokens", "_releases", "acquisitions", "total_wait")

    def __init__(self, name: str, tokens: int) -> None:
        if tokens < 1:
            raise ValueError(f"tokens must be >= 1, got {tokens}")
        self.name = name
        self.tokens = tokens
        # Outstanding release times as a min-heap (amortized O(1) expiry).
        self._releases: List[float] = []
        self.acquisitions: int = 0
        self.total_wait: float = 0.0

    def _expire(self, now: float) -> None:
        releases = self._releases
        while releases and releases[0] <= now:
            heapq.heappop(releases)

    def in_use(self, now: float) -> int:
        self._expire(now)
        return len(self._releases)

    def acquire(self, now: float, release_time_hint: Optional[float] = None) -> float:
        """Acquire a token at or after ``now``; returns the grant time.

        ``release_time_hint`` may be provided when the release time is already
        known.  If omitted, the token must be released later via
        :meth:`release_at`.
        """
        self._expire(now)
        releases = self._releases
        outstanding = len(releases)
        if outstanding < self.tokens:
            grant = now
        else:
            overflow = outstanding - self.tokens
            if overflow == 0:
                grant = releases[0]
            else:
                grant = heapq.nsmallest(overflow + 1, releases)[-1]
        self.acquisitions += 1
        self.total_wait += grant - now
        if release_time_hint is not None:
            if release_time_hint < grant:
                raise ValueError(
                    f"release {release_time_hint} precedes grant {grant}"
                )
            heapq.heappush(releases, release_time_hint)
        return grant

    def release_at(self, release_time: float) -> None:
        """Register the release time for a token acquired without a hint."""
        heapq.heappush(self._releases, release_time)

    def average_wait(self) -> float:
        if self.acquisitions == 0:
            return 0.0
        return self.total_wait / self.acquisitions

    def reset(self) -> None:
        self._releases = []
        self.acquisitions = 0
        self.total_wait = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TokenPool({self.name!r}, tokens={self.tokens})"
