"""Statistics collection for the Corona experiments.

Every experiment in the paper boils down to a handful of aggregate statistics:
execution time, achieved memory bandwidth, average request latency and network
energy.  The classes here are the small set of accumulators used to compute
them: plain counters, running mean/stddev (Welford), fixed-bin histograms and
time-weighted averages, plus a :class:`StatGroup` container that renders a
readable report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


class Counter:
    """A named monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only increase, got {amount}")
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class RunningStats:
    """Streaming mean / variance / min / max using Welford's algorithm."""

    __slots__ = ("name", "count", "_mean", "_m2", "minimum", "maximum", "total")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.count: int = 0
        self._mean: float = 0.0
        self._m2: float = 0.0
        self.minimum: float = math.inf
        self.maximum: float = -math.inf
        self.total: float = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStats") -> None:
        """Fold another accumulator into this one (parallel Welford merge)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            self.total = other.total
            return
        combined = self.count + other.count
        delta = other._mean - self._mean
        self._m2 = (
            self._m2
            + other._m2
            + delta * delta * self.count * other.count / combined
        )
        self._mean = self._mean + delta * other.count / combined
        self.count = combined
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunningStats({self.name!r}, n={self.count}, mean={self.mean:.4g}, "
            f"std={self.stddev:.4g})"
        )


class Histogram:
    """Fixed-width-bin histogram with overflow/underflow tracking.

    With ``auto_expand=True`` the histogram never truncates at ``upper``:
    when a sample lands at or beyond the current range, the range is doubled
    (merging adjacent bins, so the bin count stays fixed) until the sample
    fits.  Percentiles computed afterwards therefore cover the full observed
    range instead of silently clamping at the initial upper bound.
    """

    def __init__(
        self,
        name: str,
        lower: float,
        upper: float,
        bins: int = 32,
        auto_expand: bool = False,
    ) -> None:
        if bins < 1:
            raise ValueError(f"bins must be >= 1, got {bins}")
        if upper <= lower:
            raise ValueError(f"upper ({upper}) must exceed lower ({lower})")
        self.name = name
        self.lower = lower
        self.upper = upper
        self.bins = bins
        self.auto_expand = auto_expand
        self.counts: List[int] = [0] * bins
        self.underflow = 0
        self.overflow = 0
        self.samples = 0
        self._width = (upper - lower) / bins

    def _expand_to(self, value: float) -> None:
        """Double the range (re-binning by pairs) until ``value`` fits."""
        while value >= self.upper:
            merged = [0] * self.bins
            for index, count in enumerate(self.counts):
                merged[index >> 1] += count
            self.counts = merged
            self._width *= 2.0
            self.upper = self.lower + self._width * self.bins

    def add(self, value: float) -> None:
        self.samples += 1
        if value < self.lower:
            self.underflow += 1
            return
        if value >= self.upper:
            if not self.auto_expand:
                self.overflow += 1
                return
            self._expand_to(value)
        index = int((value - self.lower) / self._width)
        self.counts[min(index, self.bins - 1)] += 1

    def bin_edges(self) -> List[Tuple[float, float]]:
        width = self._width
        return [
            (self.lower + i * width, self.lower + (i + 1) * width)
            for i in range(self.bins)
        ]

    def percentile(self, fraction: float) -> float:
        """Approximate percentile from bin midpoints (0 < fraction <= 1)."""
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        in_range = sum(self.counts)
        if in_range == 0:
            return self.lower
        target = fraction * in_range
        running = 0
        width = self._width
        for i, count in enumerate(self.counts):
            running += count
            if running >= target:
                return self.lower + (i + 0.5) * width
        return self.upper


class TimeWeightedAverage:
    """Average of a piecewise-constant signal, weighted by how long it held."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._last_time: Optional[float] = None
        self._last_value: float = 0.0
        self._weighted_sum: float = 0.0
        self._elapsed: float = 0.0

    def update(self, now: float, value: float) -> None:
        """Record that the signal changed to ``value`` at time ``now``."""
        if self._last_time is not None:
            if now < self._last_time:
                raise ValueError("time must be monotonically non-decreasing")
            span = now - self._last_time
            self._weighted_sum += self._last_value * span
            self._elapsed += span
        self._last_time = now
        self._last_value = value

    def finalize(self, now: float) -> None:
        """Account for the interval up to ``now`` without changing the value."""
        self.update(now, self._last_value)

    @property
    def average(self) -> float:
        if self._elapsed <= 0:
            return self._last_value
        return self._weighted_sum / self._elapsed


@dataclass
class StatGroup:
    """A named collection of statistics with a readable report."""

    name: str
    counters: Dict[str, Counter] = field(default_factory=dict)
    distributions: Dict[str, RunningStats] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def distribution(self, name: str) -> RunningStats:
        if name not in self.distributions:
            self.distributions[name] = RunningStats(name)
        return self.distributions[name]

    def histogram(
        self, name: str, lower: float, upper: float, bins: int = 32
    ) -> Histogram:
        if name not in self.histograms:
            self.histograms[name] = Histogram(name, lower, upper, bins)
        return self.histograms[name]

    def report(self) -> str:
        lines = [f"== {self.name} =="]
        for name in sorted(self.counters):
            lines.append(f"  {name}: {self.counters[name].value:g}")
        for name in sorted(self.distributions):
            dist = self.distributions[name]
            lines.append(
                f"  {name}: n={dist.count} mean={dist.mean:.4g} "
                f"std={dist.stddev:.4g} min={dist.minimum:.4g} max={dist.maximum:.4g}"
            )
        for name in sorted(self.histograms):
            hist = self.histograms[name]
            lines.append(
                f"  {name}: samples={hist.samples} "
                f"p50={hist.percentile(0.5):.4g} p99={hist.percentile(0.99):.4g}"
            )
        return "\n".join(lines)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean used for the paper's aggregate speedup numbers."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of an empty sequence is undefined")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires strictly positive values")
    log_sum = sum(math.log(v) for v in values)
    return math.exp(log_sum / len(values))
