"""Discrete-event simulation kernel used by every Corona subsystem.

The kernel is intentionally small and dependency free.  It provides:

* :mod:`repro.sim.units` -- time, frequency, bandwidth and data-size units so
  that the rest of the code can speak in the paper's terms (5 GHz clocks,
  TB/s, cache lines) without sprinkling conversion constants everywhere.
* :mod:`repro.sim.engine` -- a classic event-calendar simulator built on a
  binary heap, plus process-free helper primitives.
* :mod:`repro.sim.resources` -- serial resources (channels, links, ports,
  queues) that model bandwidth occupancy and back-pressure.
* :mod:`repro.sim.stats` -- counters, histograms and time-weighted statistics
  used by every experiment.
"""

from repro.sim.engine import Event, EventQueue, Simulator
from repro.sim.resources import BoundedQueue, SerialResource, TokenPool
from repro.sim.stats import (
    Counter,
    Histogram,
    RunningStats,
    StatGroup,
    TimeWeightedAverage,
)
from repro.sim.units import (
    BYTE,
    CACHE_LINE_BYTES,
    GHZ,
    GB,
    GBPS,
    KB,
    MB,
    MHZ,
    NS,
    PS,
    TB,
    TBPS,
    US,
    Bandwidth,
    Frequency,
    Time,
    bits_to_bytes,
    bytes_to_bits,
    cycles_to_seconds,
    seconds_to_cycles,
)

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "BoundedQueue",
    "SerialResource",
    "TokenPool",
    "Counter",
    "Histogram",
    "RunningStats",
    "StatGroup",
    "TimeWeightedAverage",
    "Time",
    "Frequency",
    "Bandwidth",
    "NS",
    "PS",
    "US",
    "GHZ",
    "MHZ",
    "BYTE",
    "KB",
    "MB",
    "GB",
    "TB",
    "GBPS",
    "TBPS",
    "CACHE_LINE_BYTES",
    "bits_to_bytes",
    "bytes_to_bits",
    "cycles_to_seconds",
    "seconds_to_cycles",
]
