"""Terminal summaries of Chrome ``trace_event`` timeline artifacts.

``corona-repro trace view TIMELINE.json`` renders what the
:class:`~repro.obs.timeline.TimelineRecorder` wrote without leaving the
terminal (no Perfetto required): per-stage span statistics with an ASCII
duration histogram, the top-N slowest transactions, the fault-event table
and the counter tracks present.  Everything here reads the JSON event list
the recorder produced; nothing re-runs a replay.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Tuple, Union

from repro.core.results import nearest_rank

#: Buckets of the per-stage duration histogram (rendered as one bar each).
_HISTOGRAM_BINS = 8
_BAR_WIDTH = 24


class TraceViewError(ValueError):
    """A timeline artifact failed to parse as trace-event JSON."""


@dataclass
class StageSummary:
    """Duration statistics of one span name (``cat == "stage"`` or the
    ``transaction`` parents), in microseconds."""

    name: str
    durations_us: List[float] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.durations_us)

    @property
    def total_us(self) -> float:
        return sum(self.durations_us)

    @property
    def mean_us(self) -> float:
        return self.total_us / self.count if self.count else 0.0

    def percentile_us(self, quantile: float) -> float:
        return nearest_rank(sorted(self.durations_us), quantile)

    @property
    def max_us(self) -> float:
        return max(self.durations_us) if self.durations_us else 0.0

    def histogram(self, bins: int = _HISTOGRAM_BINS) -> List[Tuple[float, int]]:
        """``(upper_bound_us, count)`` pairs over equal-width buckets."""
        if not self.durations_us:
            return []
        top = self.max_us
        if top <= 0.0:
            return [(0.0, self.count)]
        width = top / bins
        counts = [0] * bins
        for value in self.durations_us:
            index = min(bins - 1, int(value / width))
            counts[index] += 1
        return [(width * (i + 1), counts[i]) for i in range(bins)]


@dataclass
class TimelineSummary:
    """Everything ``trace view`` prints, extracted from one event list."""

    stages: Dict[str, StageSummary]
    transactions: StageSummary
    #: ``(ts_us, dur_us, name, tid, args)`` of the slowest transactions.
    slowest: List[Tuple[float, float, str, int, Mapping]]
    #: ``(ts_us, name, site, delay_ns)`` per fault instant event.
    faults: List[Tuple[float, str, object, float]]
    #: Counter-track name -> number of points recorded.
    counters: Dict[str, int]
    #: Transactions dropped past the recorder's limit (0 = complete).
    dropped_transactions: int = 0


def load_timeline(path: Union[str, Path]) -> List[Mapping]:
    """The event array of a timeline artifact, validated to be a list."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise TraceViewError(f"{path}: unreadable timeline: {exc}") from None
    events = (
        payload.get("traceEvents") if isinstance(payload, Mapping) else payload
    )
    if not isinstance(events, list):
        raise TraceViewError(
            f"{path}: not a trace-event timeline (expected a JSON array "
            f"of events, got {type(payload).__name__})"
        )
    return [event for event in events if isinstance(event, Mapping)]


def summarize_timeline(events: Sequence[Mapping], top: int = 10) -> TimelineSummary:
    """Digest an event list into the ``trace view`` tables."""
    stages: Dict[str, StageSummary] = {}
    transactions = StageSummary(name="transaction")
    slowest: List[Tuple[float, float, str, int, Mapping]] = []
    faults: List[Tuple[float, str, object, float]] = []
    counters: Dict[str, int] = {}
    dropped = 0
    for event in events:
        phase = event.get("ph")
        if phase == "X":
            duration = float(event.get("dur", 0.0))
            if event.get("cat") == "transaction":
                transactions.durations_us.append(duration)
                slowest.append(
                    (
                        float(event.get("ts", 0.0)),
                        duration,
                        str(event.get("name", "txn")),
                        int(event.get("tid", 0)),
                        event.get("args") or {},
                    )
                )
            else:
                name = str(event.get("name", "span"))
                stages.setdefault(name, StageSummary(name=name)).durations_us.append(
                    duration
                )
        elif phase == "C":
            counters[str(event.get("name", "counter"))] = (
                counters.get(str(event.get("name", "counter")), 0) + 1
            )
        elif phase == "i":
            args = event.get("args") or {}
            faults.append(
                (
                    float(event.get("ts", 0.0)),
                    str(event.get("name", "fault")),
                    args.get("site"),
                    float(args.get("delay_ns", 0.0)),
                )
            )
        elif phase == "M" and event.get("name") == "timeline_truncated":
            dropped = int((event.get("args") or {}).get("dropped_transactions", 0))
    slowest.sort(key=lambda entry: (-entry[1], entry[0], entry[3]))
    return TimelineSummary(
        stages=stages,
        transactions=transactions,
        slowest=slowest[: max(top, 0)],
        faults=faults,
        counters=counters,
        dropped_transactions=dropped,
    )


def _bar(count: int, peak: int) -> str:
    if peak <= 0:
        return ""
    return "#" * max(1 if count else 0, round(count / peak * _BAR_WIDTH))


def render_timeline_summary(summary: TimelineSummary) -> str:
    """The plain-text report ``trace view`` prints."""
    from repro.harness.tables import format_table

    lines: List[str] = []
    txn = summary.transactions
    lines.append(
        f"{txn.count} transactions, {len(summary.stages)} stage span kinds, "
        f"{len(summary.faults)} fault events, "
        f"{len(summary.counters)} counter tracks"
    )
    if summary.dropped_transactions:
        lines.append(
            f"note: timeline truncated; {summary.dropped_transactions} "
            f"transactions past the recorder limit were dropped"
        )
    lines.append("")

    ordered = sorted(
        summary.stages.values(), key=lambda s: (-s.total_us, s.name)
    )
    if txn.count:
        ordered = [txn] + ordered
    if ordered:
        lines.append("span durations (us):")
        lines.append(
            format_table(
                ["span", "count", "mean", "p50", "p95", "max"],
                [
                    (
                        stage.name,
                        str(stage.count),
                        f"{stage.mean_us:.3f}",
                        f"{stage.percentile_us(0.50):.3f}",
                        f"{stage.percentile_us(0.95):.3f}",
                        f"{stage.max_us:.3f}",
                    )
                    for stage in ordered
                ],
            )
        )
        lines.append("")

    for stage in ordered:
        buckets = stage.histogram()
        if not buckets:
            continue
        peak = max(count for _, count in buckets)
        lines.append(f"{stage.name} duration histogram (us):")
        for upper, count in buckets:
            lines.append(f"  <= {upper:10.3f}  {count:6d}  {_bar(count, peak)}")
        lines.append("")

    if summary.slowest:
        lines.append("slowest transactions:")
        lines.append(
            format_table(
                ["ts (us)", "dur (us)", "name", "tid", "home", "size"],
                [
                    (
                        f"{ts:.3f}",
                        f"{dur:.3f}",
                        name,
                        str(tid),
                        str(args.get("home", "-")),
                        str(args.get("size_bytes", "-")),
                    )
                    for ts, dur, name, tid, args in summary.slowest
                ],
            )
        )
        lines.append("")

    if summary.faults:
        lines.append("fault events:")
        lines.append(
            format_table(
                ["ts (us)", "kind", "site", "delay (ns)"],
                [
                    (f"{ts:.3f}", name, str(site), f"{delay_ns:.1f}")
                    for ts, name, site, delay_ns in summary.faults
                ],
            )
        )
        lines.append("")

    if summary.counters:
        lines.append("counter tracks:")
        for name in sorted(summary.counters):
            lines.append(f"  {name}  ({summary.counters[name]} points)")
        lines.append("")

    return "\n".join(lines).rstrip() + "\n"
