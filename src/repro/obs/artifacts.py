"""Writing observability artifacts (metrics CSV/JSON, timeline JSON).

The runners resolve the spec's sink paths per (configuration, workload)
pair *before* the simulator is built -- in multi-pair runs each pair gets
``<stem>-<config>-<workload><ext>`` (or substitutes a literal ``{pair}``
placeholder) so pairs never overwrite each other, and worker processes can
write their own artifacts without shipping sample arrays back.  After a
replay, :func:`write_pair_artifacts` drains the simulator's sampler and
recorder into those files.
"""

from __future__ import annotations

import csv
import json
import re
import time
from dataclasses import replace
from typing import Dict, Optional, Tuple

from repro.obs.metrics import METRIC_COLUMNS
from repro.obs.spec import ObservabilitySpec

METRICS_FORMAT = "corona-metrics/1"

_SLUG_RE = re.compile(r"[^A-Za-z0-9._-]+")


def pair_slug(*parts: str) -> str:
    """A filesystem-safe label for a pair (``XBar/OCM`` -> ``XBar-OCM``)."""
    return "-".join(_SLUG_RE.sub("-", part).strip("-") for part in parts if part)


def pair_path(base: str, slug: str, multi: bool) -> str:
    """Resolve one pair's sink path from the spec's base path.

    A literal ``{pair}`` placeholder is always substituted; otherwise the
    slug is inserted before the extension only when the run has several
    pairs (single-pair runs keep the path exactly as given).
    """
    if "{pair}" in base:
        return base.replace("{pair}", slug)
    if not multi:
        return base
    stem, dot, ext = base.rpartition(".")
    if dot and "/" not in ext and "\\" not in ext:
        return f"{stem}-{slug}.{ext}"
    return f"{base}-{slug}"


def resolve_pair_spec(
    spec: Optional[ObservabilitySpec],
    configuration_name: str,
    workload_name: str,
    multi: bool,
    prefix: str = "",
) -> Optional[ObservabilitySpec]:
    """The spec a single pair's simulator should carry, or ``None``.

    Returns ``None`` when nothing simulation-side is enabled, so the
    replay's default path stays hook-free; otherwise a copy of ``spec``
    with both sink paths resolved for this pair (``prefix`` prepends e.g.
    a sweep point id to the slug).
    """
    if spec is None or not spec.simulation_active:
        return None
    slug = pair_slug(prefix, configuration_name, workload_name)
    return replace(
        spec,
        metrics_path=(
            pair_path(spec.metrics_path, slug, multi) if spec.metrics_path else ""
        ),
        timeline_path=(
            pair_path(spec.timeline_path, slug, multi) if spec.timeline_path else ""
        ),
    )


def write_pair_artifacts(
    simulator, configuration_name: str, workload_name: str
) -> Tuple[Dict[str, str], float]:
    """Write the simulator's collected telemetry to its spec's sinks.

    Returns ``(written, seconds)``: a ``{"metrics"|"timeline": path}``
    mapping of what was produced and the wall-clock cost of writing it
    (charged to the ``sink_write`` phase).
    """
    spec = simulator.observability
    written: Dict[str, str] = {}
    if spec is None:
        return written, 0.0
    started = time.perf_counter()
    sampler = simulator._obs_metrics
    if sampler is not None and spec.metrics_path:
        _write_metrics(
            spec.metrics_path, sampler.rows, configuration_name, workload_name
        )
        written["metrics"] = spec.metrics_path
    recorder = simulator._obs_timeline
    if recorder is not None and spec.timeline_path:
        with open(spec.timeline_path, "w", encoding="utf-8") as handle:
            json.dump(recorder.trace_events(), handle)
        written["timeline"] = spec.timeline_path
    return written, time.perf_counter() - started


def _write_metrics(
    path: str, rows, configuration_name: str, workload_name: str
) -> None:
    if path.endswith(".json"):
        payload = {
            "format": METRICS_FORMAT,
            "configuration": configuration_name,
            "workload": workload_name,
            "columns": list(METRIC_COLUMNS),
            "rows": [list(row) for row in rows],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        return
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(("configuration", "workload") + METRIC_COLUMNS)
        for row in rows:
            writer.writerow((configuration_name, workload_name) + row)
