"""Writing observability artifacts (metrics CSV/JSON, timeline JSON).

The runners resolve the spec's sink paths per (configuration, workload)
pair *before* the simulator is built -- in multi-pair runs each pair gets
``<stem>-<config>-<workload><ext>`` (or substitutes a literal ``{pair}``
placeholder) so pairs never overwrite each other, and worker processes can
write their own artifacts without shipping sample arrays back.  After a
replay, :func:`write_pair_artifacts` drains the simulator's sampler and
recorder into those files.
"""

from __future__ import annotations

import csv
import json
import re
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.results import samples_payload
from repro.obs.metrics import METRIC_COLUMNS
from repro.obs.spec import ObservabilitySpec

METRICS_FORMAT = "corona-metrics/1"
#: Format tag of the run-level artifact manifest (what a run left behind).
ARTIFACTS_FORMAT = "corona-artifacts/1"

_SLUG_RE = re.compile(r"[^A-Za-z0-9._-]+")


def pair_slug(*parts: str) -> str:
    """A filesystem-safe label for a pair (``XBar/OCM`` -> ``XBar-OCM``)."""
    return "-".join(_SLUG_RE.sub("-", part).strip("-") for part in parts if part)


def pair_path(base: str, slug: str, multi: bool) -> str:
    """Resolve one pair's sink path from the spec's base path.

    A literal ``{pair}`` placeholder is always substituted; otherwise the
    slug is inserted before the extension only when the run has several
    pairs (single-pair runs keep the path exactly as given).
    """
    if "{pair}" in base:
        return base.replace("{pair}", slug)
    if not multi:
        return base
    stem, dot, ext = base.rpartition(".")
    if dot and "/" not in ext and "\\" not in ext:
        return f"{stem}-{slug}.{ext}"
    return f"{base}-{slug}"


def resolve_pair_spec(
    spec: Optional[ObservabilitySpec],
    configuration_name: str,
    workload_name: str,
    multi: bool,
    prefix: str = "",
) -> Optional[ObservabilitySpec]:
    """The spec a single pair's simulator should carry, or ``None``.

    Returns ``None`` when nothing simulation-side is enabled, so the
    replay's default path stays hook-free; otherwise a copy of ``spec``
    with both sink paths resolved for this pair (``prefix`` prepends e.g.
    a sweep point id to the slug).
    """
    if spec is None or not spec.simulation_active:
        return None
    slug = pair_slug(prefix, configuration_name, workload_name)
    return replace(
        spec,
        metrics_path=(
            pair_path(spec.metrics_path, slug, multi) if spec.metrics_path else ""
        ),
        timeline_path=(
            pair_path(spec.timeline_path, slug, multi) if spec.timeline_path else ""
        ),
        samples_path=(
            pair_path(spec.samples_path, slug, multi) if spec.samples_path else ""
        ),
    )


def _open_sink(path: str, newline: Optional[str] = None):
    """Open a telemetry sink for writing, creating parent directories --
    sinks resolve to per-pair paths the user never typed, so a missing
    directory must not kill the replay after it finished."""
    parent = Path(path).parent
    if parent and not parent.exists():
        parent.mkdir(parents=True, exist_ok=True)
    if newline is None:
        return open(path, "w", encoding="utf-8")
    return open(path, "w", encoding="utf-8", newline=newline)


def write_pair_artifacts(
    simulator, configuration_name: str, workload_name: str
) -> Tuple[Dict[str, str], float]:
    """Write the simulator's collected telemetry to its spec's sinks.

    Returns ``(written, seconds)``: a ``{"metrics"|"timeline"|"samples":
    path}`` mapping of what was produced and the wall-clock cost of writing
    it (charged to the ``sink_write`` phase).
    """
    spec = simulator.observability
    written: Dict[str, str] = {}
    if spec is None:
        return written, 0.0
    started = time.perf_counter()
    sampler = simulator._obs_metrics
    if sampler is not None and spec.metrics_path:
        _write_metrics(
            spec.metrics_path, sampler.rows, configuration_name, workload_name
        )
        written["metrics"] = spec.metrics_path
    recorder = simulator._obs_timeline
    if recorder is not None and spec.timeline_path:
        with _open_sink(spec.timeline_path) as handle:
            json.dump(recorder.trace_events(), handle)
        written["timeline"] = spec.timeline_path
    if spec.samples_path:
        payload = samples_payload(
            configuration_name,
            workload_name,
            latency_s=[sample[0] for sample in simulator.stats._samples],
            sojourn_s=list(simulator._sojourns or ()),
        )
        with _open_sink(spec.samples_path) as handle:
            json.dump(payload, handle)
        written["samples"] = spec.samples_path
    return written, time.perf_counter() - started


def _write_metrics(
    path: str, rows, configuration_name: str, workload_name: str
) -> None:
    if path.endswith(".json"):
        payload = {
            "format": METRICS_FORMAT,
            "configuration": configuration_name,
            "workload": workload_name,
            "columns": list(METRIC_COLUMNS),
            "rows": [list(row) for row in rows],
        }
        with _open_sink(path) as handle:
            json.dump(payload, handle)
        return
    with _open_sink(path, newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(("configuration", "workload") + METRIC_COLUMNS)
        for row in rows:
            writer.writerow((configuration_name, workload_name) + row)


# ---------------------------------------------------------------------------
# Artifact manifest: what a run left behind
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DiffableArtifact:
    """One file a run produced, as the diff engine sees it.

    ``kind`` names the artifact family (``report``/``csv``/``json`` result
    sinks, per-pair ``metrics``/``timeline``/``samples`` telemetry);
    ``configuration``/``workload`` are set on per-pair artifacts so a loader
    can find, say, the raw-sample file of one (configuration, workload)
    without re-deriving the slugging rules.
    """

    kind: str
    path: str
    configuration: str = ""
    workload: str = ""

    def to_dict(self) -> Dict[str, str]:
        payload = {"kind": self.kind, "path": self.path}
        if self.configuration:
            payload["configuration"] = self.configuration
        if self.workload:
            payload["workload"] = self.workload
        return payload

    @classmethod
    def from_dict(cls, data: Mapping) -> "DiffableArtifact":
        return cls(
            kind=str(data.get("kind", "")),
            path=str(data.get("path", "")),
            configuration=str(data.get("configuration", "")),
            workload=str(data.get("workload", "")),
        )


def pair_artifacts(
    spec: Optional[ObservabilitySpec],
    configuration_name: str,
    workload_name: str,
    multi: bool,
    prefix: str = "",
) -> List[DiffableArtifact]:
    """The telemetry artifacts one pair's replay leaves behind (by path
    resolution only -- the same rules the runners used to write them)."""
    resolved = resolve_pair_spec(
        spec, configuration_name, workload_name, multi, prefix=prefix
    )
    if resolved is None:
        return []
    artifacts = []
    for kind, path in (
        ("metrics", resolved.metrics_path),
        ("timeline", resolved.timeline_path),
        ("samples", resolved.samples_path),
    ):
        if path:
            artifacts.append(
                DiffableArtifact(
                    kind=kind,
                    path=path,
                    configuration=configuration_name,
                    workload=workload_name,
                )
            )
    return artifacts


def write_artifact_manifest(
    path: Union[str, Path],
    artifacts: Sequence[DiffableArtifact],
    run_name: str = "",
) -> Path:
    """Write the ``corona-artifacts/1`` manifest listing a run's outputs."""
    target = Path(path)
    payload = {
        "format": ARTIFACTS_FORMAT,
        "name": run_name,
        "artifacts": [artifact.to_dict() for artifact in artifacts],
    }
    target.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return target


def load_artifact_manifest(path: Union[str, Path]) -> List[DiffableArtifact]:
    """Parse an artifact manifest, validating its format tag."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if (
        not isinstance(payload, Mapping)
        or payload.get("format") != ARTIFACTS_FORMAT
    ):
        raise ValueError(
            f"{path}: not an artifact manifest (expected format "
            f"{ARTIFACTS_FORMAT!r}, got {payload.get('format')!r})"
        )
    return [
        DiffableArtifact.from_dict(entry)
        for entry in payload.get("artifacts", [])
        if isinstance(entry, Mapping)
    ]


def artifact_manifest_path(json_sink: Union[str, Path]) -> Path:
    """Where a run's artifact manifest lives, derived from its JSON sink
    (``results.json`` -> ``results.artifacts.json``)."""
    return Path(json_sink).with_suffix(".artifacts.json")
