"""Stdlib logging wiring for the CLI and its worker processes.

One configuration point: the CLI calls :func:`configure_logging` with the
verbosity delta of its global ``-v``/``-q`` flags, which sets the root
level and a format that names the emitting *process* -- the piece that
makes pool-worker diagnostics attributable.  The chosen level is exported
through ``CORONA_LOG_LEVEL`` so spawned (non-fork) workers reproduce it via
:func:`configure_worker_logging` at startup.

Library modules just ask for a logger::

    from repro.obs.log import get_logger
    log = get_logger(__name__)
"""

from __future__ import annotations

import logging
import os
import sys

LOG_LEVEL_ENV = "CORONA_LOG_LEVEL"

_FORMAT = "%(levelname)s %(processName)s %(name)s: %(message)s"


def level_for(verbosity: int) -> int:
    """Map a ``-v``/``-q`` count delta onto a logging level.

    0 -> WARNING (default), 1 -> INFO, >=2 -> DEBUG, <0 -> ERROR.
    """
    if verbosity >= 2:
        return logging.DEBUG
    if verbosity == 1:
        return logging.INFO
    if verbosity < 0:
        return logging.ERROR
    return logging.WARNING


def configure_logging(verbosity: int = 0) -> int:
    """Configure root logging for this process and export the level."""
    level = level_for(verbosity)
    logging.basicConfig(
        level=level, format=_FORMAT, stream=sys.stderr, force=True
    )
    os.environ[LOG_LEVEL_ENV] = str(level)
    return level


def configure_worker_logging() -> None:
    """Adopt the parent's exported log level inside a worker process.

    Safe to call unconditionally: without the environment marker (e.g.
    library use outside the CLI) it leaves logging untouched.
    """
    raw = os.environ.get(LOG_LEVEL_ENV)
    if not raw:
        return
    try:
        level = int(raw)
    except ValueError:
        return
    logging.basicConfig(
        level=level, format=_FORMAT, stream=sys.stderr, force=True
    )


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)
