"""Simulated-time resource metrics: the sampler of the observability layer.

A :class:`MetricsSampler` rides the replay's event calendar: it schedules
itself every ``metrics_interval_ns`` of *simulated* time and snapshots the
system's resource state into long-form rows ``(time_ns, resource, metric,
value)``.  It reads counters the simulators already maintain (crossbar
channel bytes, mesh link busy time, DRAM queues, MSHR pools, transaction
counts) without mutating any of them, so an enabled sampler changes no
replay result -- and a disabled one is simply never constructed, keeping
the hot path untouched.

The sampler stops itself: when its tick finds the calendar otherwise empty
the replay is over, it takes a final sample and does not reschedule, so it
never keeps the event loop alive on its own.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

#: Long-form row: (time_ns, resource, metric, value).
MetricRow = Tuple[float, str, str, float]

#: CSV column order of the long-form sink (pair labels are prepended by the
#: artifact writer).
METRIC_COLUMNS = ("time_ns", "resource", "metric", "value")

#: Gauge metrics forwarded to the timeline as Chrome counter tracks.
_COUNTER_METRICS = frozenset(
    {
        "utilization",
        "queue_depth",
        "in_use",
        "in_flight",
        "active",
        "offered_rps",
        "achieved_rps",
        # Coherence traffic counters (cumulative; step tracks in Perfetto).
        "directory_lookups",
        "c2c_forwards",
        "invalidations_sent",
        "invalidation_broadcasts",
        "invalidation_unicasts",
        "writebacks",
    }
)


class MetricsSampler:
    """Samples one :class:`~repro.core.system.SystemSimulator`'s resources.

    Built per replay (its deltas are per-run) and installed by the system
    simulator after the event calendar and thread states exist.  All reads
    are non-mutating: pool/queue occupancies are counted by scanning the
    release/departure heaps instead of calling the (pruning) accessors, so
    sampling perturbs nothing.
    """

    __slots__ = (
        "interval_s",
        "rows",
        "counter_sink",
        "_system",
        "_simulator",
        "_prev",
        "_prev_channel_bytes",
        "_last_now",
    )

    def __init__(
        self,
        system,
        interval_ns: float,
        counter_sink: Optional[Callable[[float, str, float], None]] = None,
    ) -> None:
        self.interval_s = interval_ns * 1e-9
        self.rows: List[MetricRow] = []
        self.counter_sink = counter_sink
        self._system = system
        self._simulator = None
        self._prev: Dict[str, float] = {}
        self._prev_channel_bytes: Dict[int, float] = {}
        self._last_now = 0.0

    # -- calendar integration ------------------------------------------------
    def install(self, simulator) -> None:
        """Schedule the first tick at t=0 on the (fresh) event calendar."""
        self._simulator = simulator
        simulator.schedule_at(0.0, self._tick)

    def _tick(self) -> None:
        simulator = self._simulator
        now = simulator.now
        self.sample(now)
        self._last_now = now
        # The tick's own entry is already popped: a non-empty calendar means
        # the replay is still producing events, so keep sampling; an empty
        # one means this was the final sample.
        if simulator.pending_events() > 0:
            simulator.schedule_at(now + self.interval_s, self._tick)

    # -- sampling ------------------------------------------------------------
    def _delta(self, key: str, value: float) -> float:
        previous = self._prev.get(key, 0.0)
        self._prev[key] = value
        return value - previous

    def _add(self, rows: list, t_ns: float, resource: str, metric: str, value: float) -> None:
        rows.append((t_ns, resource, metric, value))
        sink = self.counter_sink
        if sink is not None and metric in _COUNTER_METRICS:
            sink(t_ns, f"{resource}.{metric}", value)

    def sample(self, now: float) -> None:
        """Append one snapshot of every resource series at simulated ``now``."""
        system = self._system
        network = system.network
        rows = self.rows
        add = self._add
        t_ns = now * 1e9
        dt = now - self._last_now

        # Interconnect aggregates (any network type).
        total_bytes = network.bytes_sent
        delta_bytes = self._delta("network.bytes", total_bytes)
        add(rows, t_ns, "network", "bytes_total", total_bytes)
        add(rows, t_ns, "network", "messages_total", network.messages_sent)
        if dt > 0:
            add(rows, t_ns, "network", "bytes_per_s", delta_bytes / dt)

        # Optical crossbar: per-channel bytes, DWDM wavelengths, token waits.
        channel_bytes = getattr(network, "channel_bytes", None)
        if channel_bytes is not None:
            prev_channels = self._prev_channel_bytes
            active_channels = 0
            channel_total = 0.0
            for channel, value in channel_bytes.items():
                channel_total += value
                if value > prev_channels.get(channel, 0.0):
                    active_channels += 1
                prev_channels[channel] = value
            delta_channel = self._delta("crossbar.bytes", channel_total)
            if dt > 0:
                capacity = (
                    network.channel_bandwidth_bytes_per_s * len(channel_bytes)
                )
                add(rows, t_ns, "crossbar", "utilization", delta_channel / (dt * capacity))
            # Each channel is a 256-wavelength DWDM bundle; a channel that
            # moved bytes this interval had its comb lit.
            add(rows, t_ns, "wavelengths", "active", active_channels * 256)
            arbiter = getattr(network, "arbiter", None)
            if arbiter is not None and hasattr(arbiter, "channels"):
                channels = arbiter.channels.values()
                wait = sum(c.total_wait_s for c in channels)
                grants = sum(c.grants for c in arbiter.channels.values())
                add(rows, t_ns, "tokens", "wait_s_total", wait)
                add(rows, t_ns, "tokens", "grants_total", grants)

        # Electrical mesh: link occupancy.
        link_resources = getattr(network, "_link_resources", None)
        if link_resources:
            busy = sum(r.busy_time for r in link_resources.values())
            delta_busy = self._delta("mesh.busy", busy)
            add(rows, t_ns, "mesh_links", "busy_s_total", busy)
            if dt > 0:
                add(
                    rows, t_ns, "mesh_links", "utilization",
                    delta_busy / (dt * len(link_resources)),
                )

        # DRAM controllers: queue depth (instantaneous) and bytes moved.
        controllers = system._controllers
        controller_list = (
            controllers if isinstance(controllers, list) else list(controllers.values())
        )
        depth = 0
        dram_bytes = 0.0
        for controller in controller_list:
            departures = controller.queue._departures
            for departure in departures:
                if departure > now:
                    depth += 1
            dram_bytes += controller.bytes_transferred
        add(rows, t_ns, "dram", "queue_depth", depth)
        add(rows, t_ns, "dram", "bytes_total", dram_bytes)
        delta_dram = self._delta("dram.bytes", dram_bytes)
        if dt > 0:
            add(rows, t_ns, "dram", "bytes_per_s", delta_dram / dt)

        # MSHR pools across every cluster hub.
        in_use = 0
        mshr_wait = 0.0
        for hub in system.hubs.values():
            pool = hub.mshr_pool
            for release in pool._releases:
                if release > now:
                    in_use += 1
            mshr_wait += pool.total_wait
        add(rows, t_ns, "mshr", "in_use", in_use)
        add(rows, t_ns, "mshr", "wait_s_total", mshr_wait)

        # Transaction lifecycle.
        issued = sum(state.next_index for state in system._threads.values())
        completed = system.stats.requests
        add(rows, t_ns, "transactions", "issued", issued)
        add(rows, t_ns, "transactions", "completed", completed)
        add(rows, t_ns, "transactions", "in_flight", issued - completed)

        # Coherence traffic: directory consultations, cache-to-cache
        # forwards, invalidation fan-out split by delivery mechanism, and
        # dirty writebacks.  Coherence-free replays build no engine and
        # emit none of these rows, keeping their sinks bit-identical.
        coherence = system.coherence
        if coherence is not None:
            cstats = coherence.stats
            add(rows, t_ns, "coherence", "directory_lookups", cstats.shared_requests)
            add(rows, t_ns, "coherence", "c2c_forwards", cstats.c2c_transfers)
            add(rows, t_ns, "coherence", "invalidations_sent", cstats.invalidations_sent)
            add(rows, t_ns, "coherence", "invalidation_broadcasts", cstats.broadcasts_used)
            add(rows, t_ns, "coherence", "invalidation_unicasts", cstats.unicast_invalidations)
            add(rows, t_ns, "coherence", "writebacks", cstats.dirty_writebacks)

        # Open-loop load tracking: the nominal offered rate vs the running
        # completion rate (closed-loop replays carry no offered load and
        # emit neither row, keeping their sinks bit-identical).
        if system._offered_rps > 0.0:
            add(rows, t_ns, "load", "offered_rps", system._offered_rps)
            if now > 0:
                add(rows, t_ns, "load", "achieved_rps", completed / now)

    # -- reporting -----------------------------------------------------------
    def resources(self) -> List[str]:
        """Distinct resource names sampled so far (row order preserved)."""
        seen: Dict[str, None] = {}
        for row in self.rows:
            seen.setdefault(row[1], None)
        return list(seen)
