"""The wall-clock heartbeat: pairs done, pairs/s, ETA on stderr.

A :class:`ProgressReporter` is fed one :meth:`pair_done` per replayed
(configuration, workload) pair by whichever runner is executing -- serial,
parallel pool, or the sweep engine -- and rate-limits its own output, so
callers just tick it.  It writes to stderr (never stdout) so heartbeats
interleave safely with piped reports and JSON output.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO


class ProgressReporter:
    """Aggregates pair outcomes into periodic one-line heartbeats."""

    def __init__(
        self,
        total_pairs: int,
        interval_s: float = 2.0,
        stream: Optional[TextIO] = None,
        label: str = "run",
    ) -> None:
        self.total = max(total_pairs, 0)
        self.done = 0
        self.failed = 0
        self.retried = 0
        self.interval_s = interval_s
        self.stream = stream if stream is not None else sys.stderr
        self.label = label
        self._started = time.monotonic()
        self._last_emit = 0.0
        self._emit(force=True)

    def pair_done(self, failed: bool = False, retries: int = 0) -> None:
        """Record one finished pair (its retries and final outcome)."""
        self.done += 1
        if failed:
            self.failed += 1
        if retries > 0:
            self.retried += retries
        self._emit(force=self.done >= self.total)

    def finish(self) -> None:
        """Emit the final line unconditionally."""
        self._emit(force=True)

    # -- rendering -----------------------------------------------------------
    def _emit(self, force: bool = False) -> None:
        now = time.monotonic()
        if not force and now - self._last_emit < self.interval_s:
            return
        self._last_emit = now
        elapsed = max(now - self._started, 1e-9)
        rate = self.done / elapsed
        if self.done and self.total > self.done and rate > 0:
            eta = f"{(self.total - self.done) / rate:.0f}s"
        elif self.total > self.done:
            eta = "?"
        else:
            eta = "0s"
        percent = 100.0 * self.done / self.total if self.total else 100.0
        self.stream.write(
            f"[{self.label}] {self.done}/{self.total} pairs "
            f"({percent:.0f}%) | {rate:.2f} pairs/s | ETA {eta} | "
            f"retried {self.retried} | failed {self.failed}\n"
        )
        self.stream.flush()
