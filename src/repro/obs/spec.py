"""The frozen observability specification.

An :class:`ObservabilitySpec` describes what telemetry a run emits, as a
JSON-round-tripping node of the Scenario tree (``"observability": {...}`` in
a scenario file).  Everything defaults to *off*: a default spec records
nothing, installs nothing into the simulator, and an ``observability: null``
scenario replays bit-identically to one that never mentions observability.

Three planes hang off this spec:

``metrics_interval_ns`` / ``metrics_path``
    The simulated-time plane's :class:`~repro.obs.metrics.MetricsSampler`:
    resource-utilization time series sampled every ``metrics_interval_ns``
    of *simulated* time, written as long-form CSV (or JSON, by extension)
    to ``metrics_path``.
``timeline_path`` / ``timeline_limit``
    The :class:`~repro.obs.timeline.TimelineRecorder`: per-transaction spans
    and fault events in Chrome ``trace_event`` JSON (loadable in Perfetto),
    capped at ``timeline_limit`` span groups per replay.
``progress`` / ``progress_interval_s``
    The wall-clock plane's harness heartbeat (pairs done, pairs/s, ETA) on
    stderr, also reachable via the ``--progress`` CLI flag.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Mapping


class ObservabilityError(ValueError):
    """An observability spec field failed to parse or validate.

    ``field`` holds the dotted path relative to the spec root (e.g.
    ``metrics_interval_ns``); ``reason`` the bare message.  The Scenario
    parser re-raises this as a :class:`~repro.api.scenario.ScenarioError`
    with the enclosing ``observability.`` prefix.
    """

    def __init__(self, field: str, reason: str) -> None:
        super().__init__(f"{field}: {reason}" if field else reason)
        self.field = field
        self.reason = reason


@dataclass(frozen=True)
class ObservabilitySpec:
    """Telemetry switches for one run (everything off by default)."""

    #: Simulated-time sampling period of the metrics plane, in nanoseconds.
    metrics_interval_ns: float = 1000.0
    #: Sink for the resource time series; empty disables the sampler.
    #: ``.json`` writes a JSON document, anything else long-form CSV.  In
    #: multi-pair runs each pair writes ``<stem>-<config>-<workload><ext>``
    #: (or substitutes a literal ``{pair}`` placeholder).
    metrics_path: str = ""
    #: Sink for the Chrome ``trace_event`` timeline; empty disables it.
    timeline_path: str = ""
    #: Sink for the raw per-transaction latency (and open-loop sojourn)
    #: samples as ``corona-samples/1`` JSON; empty disables it.  The replay
    #: always collects these samples, so exporting them changes no result;
    #: the diff engine reads them for exact percentile/KS comparison.
    samples_path: str = ""
    #: Per-transaction span groups recorded before the timeline truncates
    #: (counters and fault events keep flowing; truncation is noted in the
    #: trace metadata).
    timeline_limit: int = 100_000
    #: Emit the harness heartbeat (pairs done, pairs/s, ETA) on stderr.
    progress: bool = False
    #: Minimum wall-clock seconds between heartbeat lines.
    progress_interval_s: float = 2.0

    def __post_init__(self) -> None:
        self._expect_number("metrics_interval_ns", self.metrics_interval_ns)
        if self.metrics_interval_ns <= 0:
            raise ObservabilityError(
                "metrics_interval_ns",
                f"must be > 0, got {self.metrics_interval_ns!r}",
            )
        for name in ("metrics_path", "timeline_path", "samples_path"):
            if not isinstance(getattr(self, name), str):
                raise ObservabilityError(
                    name, f"must be a string path, got {getattr(self, name)!r}"
                )
        if not isinstance(self.timeline_limit, int) or isinstance(
            self.timeline_limit, bool
        ):
            raise ObservabilityError(
                "timeline_limit",
                f"must be an integer, got {self.timeline_limit!r}",
            )
        if self.timeline_limit < 0:
            raise ObservabilityError(
                "timeline_limit", f"must be >= 0, got {self.timeline_limit}"
            )
        if not isinstance(self.progress, bool):
            raise ObservabilityError(
                "progress", f"must be a boolean, got {self.progress!r}"
            )
        self._expect_number("progress_interval_s", self.progress_interval_s)
        if self.progress_interval_s <= 0:
            raise ObservabilityError(
                "progress_interval_s",
                f"must be > 0, got {self.progress_interval_s!r}",
            )

    @staticmethod
    def _expect_number(name: str, value: object) -> None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ObservabilityError(name, f"must be a number, got {value!r}")

    # -- activity predicates -------------------------------------------------
    @property
    def metrics_enabled(self) -> bool:
        return bool(self.metrics_path)

    @property
    def timeline_enabled(self) -> bool:
        return bool(self.timeline_path)

    @property
    def samples_enabled(self) -> bool:
        return bool(self.samples_path)

    @property
    def simulation_active(self) -> bool:
        """Whether the replay carries any per-pair telemetry at all.

        A samples-only spec installs nothing into the event loop (the stats
        object always collects raw samples); it still counts as active so
        the runners resolve its per-pair sink path and drain it.
        """
        return (
            self.metrics_enabled or self.timeline_enabled or self.samples_enabled
        )

    @property
    def any_active(self) -> bool:
        return self.simulation_active or self.progress

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """All fields as a JSON-clean mapping (exact round-trip)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "ObservabilitySpec":
        """Parse a spec mapping, raising :class:`ObservabilityError` naming
        any bad or unknown field."""
        if not isinstance(data, Mapping):
            raise ObservabilityError(
                "", f"expected an object, got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ObservabilityError(
                unknown[0],
                f"unknown observability field; known fields: {sorted(known)}",
            )
        kwargs = dict(data)
        limit = kwargs.get("timeline_limit")
        if isinstance(limit, float) and limit.is_integer():
            kwargs["timeline_limit"] = int(limit)
        return cls(**kwargs)
