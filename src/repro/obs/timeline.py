"""Chrome ``trace_event`` timelines of the replay (Perfetto-loadable).

A :class:`TimelineRecorder` collects one span group per completed
transaction -- issue, arbitration, transfer, memory, response under a
``txn`` parent -- plus fault instant-events from
:mod:`repro.faults.inject` and resource counter tracks fed by the
:class:`~repro.obs.metrics.MetricsSampler`.  The output is the plain-array
flavor of the Chrome trace-event format: a JSON list of event objects with
``ts``/``dur`` in microseconds, which both ``chrome://tracing`` and
https://ui.perfetto.dev load directly.

Track layout
------------
Transactions render under process ``replay``: each hardware thread owns
``window`` slot tracks (``tid = thread_id * window + index % window``).
Because the issue window gates miss ``i + window`` on the completion of
miss ``i``, transactions sharing a slot never overlap, so every track shows
cleanly nested spans.  Resource counters render under process
``resources`` and fault markers under process ``faults``.

The recorder is only constructed when a timeline sink is configured; the
replay's response handlers pay a single ``is None`` check otherwise.
"""

from __future__ import annotations

from typing import Dict, List

#: Synthetic process ids grouping the timeline's tracks.
PID_TRANSACTIONS = 1
PID_RESOURCES = 2
PID_FAULTS = 3

_S_TO_US = 1e6


class TimelineRecorder:
    """Accumulates trace events for one replay."""

    __slots__ = ("events", "limit", "recorded", "dropped", "_hub_fwd", "_named_tracks")

    def __init__(self, hub_fwd: List[float], limit: int = 100_000) -> None:
        #: The trace-event objects, in emission order.
        self.events: List[Dict[str, object]] = []
        #: Maximum transaction span groups kept (counters/faults always flow).
        self.limit = limit
        self.recorded = 0
        self.dropped = 0
        self._hub_fwd = hub_fwd
        self._named_tracks: set = set()
        for pid, name in (
            (PID_TRANSACTIONS, "replay"),
            (PID_RESOURCES, "resources"),
            (PID_FAULTS, "faults"),
        ):
            self.events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": name},
                }
            )

    # -- transaction spans ---------------------------------------------------
    def record_transaction(self, state, transaction, response_now: float, completion: float) -> None:
        """One completed miss: the nested issue/network/memory/response spans.

        Called from the response handlers with the transaction's accumulated
        timings; every span is reconstructed analytically, so recording costs
        nothing on the other three stages.
        """
        if self.recorded >= self.limit:
            self.dropped += 1
            return
        self.recorded += 1
        window = state.window
        tid = state.thread_id * window + transaction.index % window
        events = self.events
        if tid not in self._named_tracks:
            self._named_tracks.add(tid)
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": PID_TRANSACTIONS,
                    "tid": tid,
                    "args": {
                        "name": f"thread {state.thread_id} slot "
                        f"{transaction.index % window}"
                    },
                }
            )

        issue = transaction.issue_time
        spans = []
        request = transaction.request_result
        if request is not None:
            req_start = request.arrival_time - request.network_latency
            spans.append(("issue", issue, req_start))
            spans.append(
                ("arbitration", req_start, req_start + request.queueing_delay)
            )
            spans.append(
                ("transfer", req_start + request.queueing_delay, request.arrival_time)
            )
            memory_anchor = request.arrival_time
        else:
            memory_anchor = issue + transaction.mshr_wait

        # The response event fires one home-hub forward after the memory
        # (or coherence supplier) finished; coherent misses answer from the
        # supplier, so the anchor is kept approximate there.
        if transaction.coherence is None:
            memory_end = response_now - self._hub_fwd[transaction.home]
        else:
            memory_end = response_now
        memory_start = memory_end - transaction.memory_latency
        if memory_start < memory_anchor:
            memory_start = memory_anchor
        spans.append(("memory", memory_start, memory_end))
        spans.append(("response", response_now, completion))

        events.append(
            {
                "name": "txn write" if transaction.is_write else "txn read",
                "cat": "transaction",
                "ph": "X",
                "pid": PID_TRANSACTIONS,
                "tid": tid,
                "ts": issue * _S_TO_US,
                "dur": max(completion - issue, 0.0) * _S_TO_US,
                "args": {
                    "index": transaction.index,
                    "home": transaction.home,
                    "size_bytes": transaction.size_bytes,
                    "shared": transaction.shared,
                },
            }
        )
        for name, start, end in spans:
            events.append(
                {
                    "name": name,
                    "cat": "stage",
                    "ph": "X",
                    "pid": PID_TRANSACTIONS,
                    "tid": tid,
                    "ts": start * _S_TO_US,
                    "dur": max(end - start, 0.0) * _S_TO_US,
                }
            )

    # -- resource counters ---------------------------------------------------
    def counter(self, t_ns: float, name: str, value: float) -> None:
        """One point of a per-resource counter track (fed by the sampler)."""
        self.events.append(
            {
                "name": name,
                "ph": "C",
                "pid": PID_RESOURCES,
                "tid": 0,
                "ts": t_ns * 1e-3,
                "args": {"value": value},
            }
        )

    # -- fault markers -------------------------------------------------------
    def fault_event(self, now: float, kind: str, site: int, delay_s: float) -> None:
        """An injected-fault instant event (token loss, DRAM timeout)."""
        self.events.append(
            {
                "name": kind,
                "cat": "fault",
                "ph": "i",
                "s": "p",
                "pid": PID_FAULTS,
                "tid": 0,
                "ts": now * _S_TO_US,
                "args": {"site": site, "delay_ns": delay_s * 1e9},
            }
        )

    # -- export --------------------------------------------------------------
    def trace_events(self) -> List[Dict[str, object]]:
        """The final event array, with a truncation note when spans dropped."""
        if self.dropped:
            return self.events + [
                {
                    "ph": "M",
                    "name": "timeline_truncated",
                    "pid": PID_TRANSACTIONS,
                    "tid": 0,
                    "args": {"dropped_transactions": self.dropped, "limit": self.limit},
                }
            ]
        return self.events
