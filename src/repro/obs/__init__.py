"""Opt-in observability: simulated-time metrics, timelines, and profiling.

Three planes, all off by default (a run that does not ask for telemetry is
bit-identical to one built before this package existed):

* **Simulated time** -- :class:`~repro.obs.metrics.MetricsSampler` ticks on
  the event calendar and emits long-form resource time series;
  :class:`~repro.obs.timeline.TimelineRecorder` emits per-transaction span
  groups and fault markers as Chrome ``trace_event`` JSON (Perfetto).
* **Wall clock** -- phase/per-worker timings collected by the runners and
  the :class:`~repro.obs.progress.ProgressReporter` heartbeat on stderr.
* **Surface** -- :class:`~repro.obs.spec.ObservabilitySpec`, the frozen
  Scenario-tree node behind the ``--progress``/``--metrics-out``/
  ``--timeline-out`` CLI flags, plus the stdlib logging wiring of
  :mod:`repro.obs.log`.
"""

from repro.obs.artifacts import (
    DiffableArtifact,
    artifact_manifest_path,
    load_artifact_manifest,
    pair_artifacts,
    pair_path,
    pair_slug,
    resolve_pair_spec,
    write_artifact_manifest,
    write_pair_artifacts,
)
from repro.obs.log import (
    configure_logging,
    configure_worker_logging,
    get_logger,
)
from repro.obs.metrics import METRIC_COLUMNS, MetricsSampler
from repro.obs.progress import ProgressReporter
from repro.obs.spec import ObservabilityError, ObservabilitySpec
from repro.obs.timeline import TimelineRecorder

__all__ = [
    "METRIC_COLUMNS",
    "DiffableArtifact",
    "MetricsSampler",
    "ObservabilityError",
    "ObservabilitySpec",
    "ProgressReporter",
    "TimelineRecorder",
    "artifact_manifest_path",
    "configure_logging",
    "configure_worker_logging",
    "get_logger",
    "load_artifact_manifest",
    "pair_artifacts",
    "pair_path",
    "pair_slug",
    "resolve_pair_spec",
    "write_artifact_manifest",
    "write_pair_artifacts",
]
