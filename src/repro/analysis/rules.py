"""The lint rule registry: ``rule id -> checker``, mirroring ``api/registry``.

Rules are registered with the same decorator idiom the Scenario API uses
for configurations and workloads (:mod:`repro.api.registry`): a module
table, a ``@register_rule`` decorator, collision errors on double
registration and unknown-name errors listing what *is* registered.  The
two stock rule families live in :mod:`repro.analysis.determinism` and
:mod:`repro.analysis.unitflow`; importing :mod:`repro.analysis` registers
both, and user modules may register additional rules the same way.

A checker is a callable ``(RuleContext) -> Iterable[Finding]`` invoked
once per analyzed file with the parsed AST.  Rules declare *exempt zones*
-- path fragments (``harness/``, ``obs/``...) where the hazard they hunt
is the point of the code (wall-clock profiling belongs in the harness,
not in simulated-time models) -- and the engine silences them there.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.analysis.findings import Finding


class AnalysisError(ValueError):
    """Base class for static-analysis failures (bad rule ids, bad baselines)."""


class RuleCollisionError(AnalysisError):
    """A rule id was registered twice without ``replace=True``."""


class UnknownRuleError(AnalysisError, KeyError):
    """A rule id was selected/ignored that no registered rule carries."""

    def __str__(self) -> str:  # KeyError quotes its args; keep the message
        return self.args[0]


@dataclass
class RuleContext:
    """Everything a checker gets to look at for one file."""

    #: Normalized path (what findings will carry).
    path: str
    tree: ast.AST
    source: str
    #: Source split into lines (1-indexed access via ``lines[line - 1]``).
    lines: List[str] = field(default_factory=list)

    def finding(
        self,
        node: ast.AST,
        rule: str,
        message: str,
        suggestion: str = "",
    ) -> Finding:
        """A :class:`Finding` anchored at ``node``'s location."""
        return Finding(
            file=self.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
            suggestion=suggestion,
        )


@dataclass(frozen=True)
class Rule:
    """One registered rule: identity, docs and the checker callable."""

    rule_id: str
    family: str
    summary: str
    checker: Callable[[RuleContext], Iterable[Finding]]
    #: Path fragments where this rule is silent (allowlisted zones).
    exempt_zones: Tuple[str, ...] = ()

    def exempt(self, path: str) -> bool:
        return any(zone in path for zone in self.exempt_zones)


class RuleRegistry:
    """``rule id -> Rule`` with decorator-based registration."""

    def __init__(self) -> None:
        self._rules: Dict[str, Rule] = {}

    def register(
        self,
        rule_id: str,
        *,
        family: str,
        summary: str,
        exempt_zones: Tuple[str, ...] = (),
        replace: bool = False,
    ) -> Callable:
        """Decorator registering a checker under ``rule_id``."""
        if not isinstance(rule_id, str) or not rule_id:
            raise AnalysisError(
                f"rule ids must be non-empty strings, got {rule_id!r}"
            )

        def decorator(checker: Callable) -> Callable:
            if rule_id in self._rules and not replace:
                raise RuleCollisionError(
                    f"rule {rule_id!r} is already registered; pass "
                    f"replace=True to shadow it"
                )
            self._rules[rule_id] = Rule(
                rule_id=rule_id,
                family=family,
                summary=summary,
                checker=checker,
                exempt_zones=exempt_zones,
            )
            return checker

        return decorator

    def get(self, rule_id: str) -> Rule:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise UnknownRuleError(
                f"unknown rule {rule_id!r}; registered: {self.names()}"
            ) from None

    def names(self) -> List[str]:
        """Registered rule ids in registration order."""
        return list(self._rules)

    def rules(self) -> List[Rule]:
        return list(self._rules.values())

    def select(
        self,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
    ) -> List[Rule]:
        """The rules to run after ``--select``/``--ignore`` filtering.

        Unknown ids in either list raise :class:`UnknownRuleError` (a typo
        in a CI invocation must fail the job, not silently lint nothing).
        """
        chosen = list(select) if select else self.names()
        for rule_id in chosen:
            self.get(rule_id)
        ignored = set(ignore or ())
        for rule_id in sorted(ignored):  # sorted: first bad id wins stably
            self.get(rule_id)
        return [self.get(r) for r in chosen if r not in ignored]

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def __len__(self) -> int:
        return len(self._rules)


#: The public rule table.  Importing :mod:`repro.analysis` seeds it with the
#: determinism and unit-flow families.
RULES = RuleRegistry()


def register_rule(
    rule_id: str,
    *,
    family: str,
    summary: str,
    exempt_zones: Tuple[str, ...] = (),
    replace: bool = False,
) -> Callable:
    """Register a ``(RuleContext) -> Iterable[Finding]`` checker by id."""
    return RULES.register(
        rule_id,
        family=family,
        summary=summary,
        exempt_zones=exempt_zones,
        replace=replace,
    )
