"""Baseline files: grandfathered findings that do not fail the lint gate.

A baseline is a committed JSON snapshot of known findings.  The gate then
fails only on *new* findings -- the suite can land with pre-existing debt
recorded instead of fixed, and every later PR is held to "no new hazards".

Keys are line-insensitive (``(file, rule, message)`` with a per-key count,
see :meth:`repro.analysis.findings.Finding.baseline_key`): unrelated edits
that shift code up or down must not invalidate the baseline, but a *second*
occurrence of a baselined hazard in the same file is new debt and fails.
Stale entries (baselined findings that no longer occur) are reported so the
baseline ratchets down over time; refresh with ``--update-baseline``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import AnalysisError

BASELINE_FORMAT = "corona-lint-baseline/1"

#: ``(file, rule, message) -> allowed count``.
BaselineKey = Tuple[str, str, str]
Baseline = Dict[BaselineKey, int]


def load_baseline(path: Path) -> Baseline:
    """Load a baseline file; a missing file is an empty baseline."""
    if not path.exists():
        return {}
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise AnalysisError(f"baseline {path} is not valid JSON: {error}") from None
    if not isinstance(data, dict) or data.get("format") != BASELINE_FORMAT:
        raise AnalysisError(
            f"baseline {path} has format {data.get('format')!r}; "
            f"expected {BASELINE_FORMAT!r}"
        )
    baseline: Baseline = {}
    for entry in data.get("findings", []):
        missing = [k for k in ("file", "rule", "message") if k not in entry]
        if missing:
            raise AnalysisError(
                f"baseline {path} entry is missing {missing[0]!r}: {entry}"
            )
        key = (entry["file"], entry["rule"], entry["message"])
        baseline[key] = baseline.get(key, 0) + int(entry.get("count", 1))
    return baseline


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Write the current findings as the new baseline."""
    counts: Baseline = {}
    for finding in sorted(findings):
        key = finding.baseline_key()
        counts[key] = counts.get(key, 0) + 1
    entries = [
        {"file": file, "rule": rule, "message": message, "count": count}
        for (file, rule, message), count in sorted(counts.items())
    ]
    payload = {"format": BASELINE_FORMAT, "findings": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def partition_findings(
    findings: Sequence[Finding], baseline: Baseline
) -> Tuple[List[Finding], List[Finding], Baseline]:
    """Split findings into ``(new, baselined, stale)``.

    Each baseline entry's count is consumed by matching findings in sorted
    order; findings beyond the budget are new.  ``stale`` holds leftover
    baseline budget -- entries whose hazard no longer occurs.
    """
    remaining = dict(baseline)
    new: List[Finding] = []
    baselined: List[Finding] = []
    for finding in sorted(findings):
        key = finding.baseline_key()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            baselined.append(finding)
        else:
            new.append(finding)
    stale = {key: count for key, count in remaining.items() if count > 0}
    return new, baselined, stale
