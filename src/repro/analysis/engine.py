"""The analysis engine: walk files, run rules, honor suppression pragmas.

The engine is the only component that touches the filesystem.  It walks the
requested paths (sorted, so reports are deterministic), parses each ``.py``
file once, runs every selected rule whose exempt zones do not cover the
file, and drops findings silenced by an inline pragma::

    risky = compute()  # lint: ignore[det-set-iter] order is re-sorted below
    # lint: ignore[unit-mixed-arith] comparing raw magnitudes on purpose
    if a_ns < b_s:
        ...

A pragma suppresses the listed rule ids (comma-separated) on its own line;
a comment line that contains *only* a pragma also covers the next line.
Unparseable files surface as ``parse-error`` findings rather than crashing
the run -- a syntax error must fail the lint job, not hide it.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import RULES, AnalysisError, Rule, RuleContext

#: Rule id carried by findings for files the parser rejects.
PARSE_ERROR_RULE = "parse-error"

_PRAGMA_RE = re.compile(r"#\s*lint:\s*ignore\[([^\]]*)\]")


@dataclass
class LintReport:
    """Everything one engine run produced."""

    #: Surviving findings, sorted by (file, line, column, rule).
    findings: List[Finding] = field(default_factory=list)
    #: Findings silenced by an inline pragma (kept for --show-suppressed
    #: style tooling and for the self-scan tests).
    suppressed: List[Finding] = field(default_factory=list)
    #: Files actually parsed and scanned.
    files_scanned: int = 0
    #: Rule ids that ran (post --select/--ignore filtering).
    rules_run: List[str] = field(default_factory=list)

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def parse_pragmas(source: str) -> Dict[int, Set[str]]:
    """``line number -> suppressed rule ids`` from ``# lint: ignore[...]``.

    The empty-bracket form ``# lint: ignore[]`` suppresses nothing (it is
    not a blanket waiver -- every suppression names its rule).
    """
    suppressions: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if not match:
            continue
        rule_ids = {
            part.strip() for part in match.group(1).split(",") if part.strip()
        }
        if not rule_ids:
            continue
        suppressions.setdefault(lineno, set()).update(rule_ids)
        if line[: match.start()].strip() == "":
            # Standalone pragma comment: also covers the following line.
            suppressions.setdefault(lineno + 1, set()).update(rule_ids)
    return suppressions


def normalize_path(path: Path, root: Optional[Path] = None) -> str:
    """POSIX-style path, made relative to ``root`` (default: cwd) if possible."""
    base = (root or Path.cwd()).resolve()
    resolved = path.resolve()
    try:
        return resolved.relative_to(base).as_posix()
    except ValueError:
        return resolved.as_posix()


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """All ``.py`` files under ``paths``, deduplicated and sorted."""
    seen: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if "__pycache__" in candidate.parts:
                    continue
                seen.add(candidate.resolve())
        elif path.suffix == ".py":
            seen.add(path.resolve())
        elif not path.exists():
            raise AnalysisError(f"lint path does not exist: {path}")
    return sorted(seen)


def analyze_source(
    source: str,
    path: str,
    rules: Sequence[Rule],
) -> Tuple[List[Finding], List[Finding]]:
    """Scan one file's source; returns ``(findings, suppressed)``."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        finding = Finding(
            file=path,
            line=error.lineno or 1,
            column=(error.offset or 1),
            rule=PARSE_ERROR_RULE,
            message=f"file does not parse: {error.msg}",
            suggestion="fix the syntax error",
        )
        return [finding], []
    context = RuleContext(
        path=path, tree=tree, source=source, lines=source.splitlines()
    )
    suppressions = parse_pragmas(source)
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    for rule in rules:
        if rule.exempt(path):
            continue
        for finding in rule.checker(context):
            if finding.rule in suppressions.get(finding.line, ()):
                suppressed.append(finding)
            else:
                findings.append(finding)
    return sorted(findings), sorted(suppressed)


def analyze_paths(
    paths: Sequence[Path],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    root: Optional[Path] = None,
) -> LintReport:
    """Run the selected rules over every ``.py`` file under ``paths``."""
    rules = RULES.select(select=select, ignore=ignore)
    report = LintReport(rules_run=[rule.rule_id for rule in rules])
    for file_path in iter_python_files(paths):
        normalized = normalize_path(file_path, root=root)
        source = file_path.read_text(encoding="utf-8")
        findings, suppressed = analyze_source(source, normalized, rules)
        report.findings.extend(findings)
        report.suppressed.extend(suppressed)
        report.files_scanned += 1
    report.findings.sort()
    report.suppressed.sort()
    return report
