"""Runtime determinism sanitizer: replay a scenario twice, diff digests.

The dynamic counterpart to the static rules: ``corona-repro run
--check-determinism`` executes the scenario in N (default 2) *fresh
processes* -- spawned, not forked, so each replica gets its own interpreter
with its own ``PYTHONHASHSEED``-randomized string hashing, fresh module
state and a cold ``random`` module -- and compares SHA-256 digests of every
result record.  A scenario whose output depends on set iteration order,
module-level RNG state or anything else the static rules hunt will disagree
across replicas; the CLI maps that to exit code 4.

Replicas run with output sinks and observability stripped: the check
compares *results*, and must not clobber the user's report files or write
trace artifacts twice.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.api.run import run as run_scenario
from repro.api.scenario import OutputSpec, Scenario

#: Number of fresh-process replays ``check_determinism`` compares by default.
DEFAULT_REPLICAS = 2


def result_digest(result) -> str:
    """SHA-256 over one result record's canonical JSON."""
    payload = json.dumps(result.to_dict(), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def scenario_digests(scenario: Scenario, jobs: Optional[int] = None) -> Dict[str, str]:
    """``"configuration/workload" -> digest`` for one in-process run."""
    stripped = replace(scenario, output=OutputSpec(), observability=None)
    outcome = run_scenario(stripped, jobs=jobs)
    digests: Dict[str, str] = {}
    for result in outcome.results:
        digests[f"{result.configuration}/{result.workload}"] = result_digest(result)
    return digests


def _replica_main(scenario_data: Dict, jobs: Optional[int], conn) -> None:
    """Spawn-process entry point: run the scenario, ship digests back."""
    try:
        scenario = Scenario.from_dict(scenario_data)
        conn.send({"digests": scenario_digests(scenario, jobs=jobs)})
    except BaseException as error:  # ship the failure; the parent re-raises
        conn.send({"error": f"{type(error).__name__}: {error}"})
    finally:
        conn.close()


@dataclass
class DeterminismCheck:
    """The outcome of a multi-replica determinism check."""

    #: Per-replica ``"configuration/workload" -> digest`` maps.
    replicas: List[Dict[str, str]] = field(default_factory=list)
    #: Pair keys whose digests disagree across replicas (sorted), plus pairs
    #: present in some replicas but not others.
    diverging: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.diverging

    @property
    def pairs(self) -> int:
        return len(self.replicas[0]) if self.replicas else 0

    def overall_digest(self) -> str:
        """One digest over replica 0's per-pair digests (the run identity)."""
        if not self.replicas:
            return hashlib.sha256(b"").hexdigest()
        payload = json.dumps(self.replicas[0], sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def summary(self) -> str:
        if self.ok:
            return (
                f"deterministic: {len(self.replicas)} fresh-process replays, "
                f"{self.pairs} result digests identical "
                f"({self.overall_digest()[:16]})"
            )
        return (
            f"NONDETERMINISTIC: {len(self.diverging)} of {self.pairs} "
            f"result digests diverge across {len(self.replicas)} replays: "
            f"{', '.join(self.diverging)}"
        )


def compare_replicas(replicas: List[Dict[str, str]]) -> DeterminismCheck:
    """Diff per-pair digest maps from independent replays."""
    check = DeterminismCheck(replicas=replicas)
    if len(replicas) < 2:
        return check
    keys = set()
    for digests in replicas:
        keys.update(digests)
    diverging = []
    for key in sorted(keys):
        values = {digests.get(key) for digests in replicas}
        if len(values) > 1:
            diverging.append(key)
    check.diverging = diverging
    return check


def _spawn_pythonpath() -> str:
    """PYTHONPATH for replicas: the parent's, plus wherever ``repro`` lives.

    Spawned interpreters rebuild ``sys.path`` from the environment, so a
    parent that imported ``repro`` off a manually-extended path (editable
    checkouts, test harnesses) must pass that location along explicitly.
    """
    import repro

    package_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = os.environ.get("PYTHONPATH", "")
    parts = [package_root] + [p for p in existing.split(os.pathsep) if p]
    seen = set()
    unique = [p for p in parts if not (p in seen or seen.add(p))]
    return os.pathsep.join(unique)


def check_determinism(
    scenario: Scenario,
    jobs: Optional[int] = None,
    replicas: int = DEFAULT_REPLICAS,
    timeout_s: float = 600.0,
) -> DeterminismCheck:
    """Replay ``scenario`` in ``replicas`` fresh processes and diff digests.

    Raises :class:`RuntimeError` if a replica fails or times out -- a crash
    is not a determinism verdict.
    """
    if replicas < 2:
        raise ValueError(f"need at least 2 replicas to compare, got {replicas}")
    import multiprocessing

    context = multiprocessing.get_context("spawn")
    scenario_data = scenario.to_dict()
    previous_pythonpath = os.environ.get("PYTHONPATH")
    os.environ["PYTHONPATH"] = _spawn_pythonpath()
    try:
        digest_maps: List[Dict[str, str]] = []
        for index in range(replicas):
            parent_conn, child_conn = context.Pipe(duplex=False)
            process = context.Process(
                target=_replica_main,
                args=(scenario_data, jobs, child_conn),
                name=f"determinism-replica-{index}",
            )
            process.start()
            child_conn.close()
            try:
                if not parent_conn.poll(timeout_s):
                    raise RuntimeError(
                        f"determinism replica {index} timed out after "
                        f"{timeout_s:.0f} s"
                    )
                message = parent_conn.recv()
            except EOFError:
                raise RuntimeError(
                    f"determinism replica {index} exited without a result"
                ) from None
            finally:
                process.join(timeout=30.0)
                if process.is_alive():  # pragma: no cover - stuck replica
                    process.terminate()
                    process.join()
                parent_conn.close()
            if "error" in message:
                raise RuntimeError(
                    f"determinism replica {index} failed: {message['error']}"
                )
            digest_maps.append(message["digests"])
    finally:
        if previous_pythonpath is None:
            os.environ.pop("PYTHONPATH", None)
        else:
            os.environ["PYTHONPATH"] = previous_pythonpath
    return compare_replicas(digest_maps)
