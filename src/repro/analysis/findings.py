"""Finding records produced by the static analysis rules.

A :class:`Finding` is one rule hit at one source location.  Findings are
plain frozen dataclasses with an exact JSON round-trip (the same contract
as every other serialized record in this repo), ordered by location so
reports and baselines are deterministic regardless of rule execution
order.

The *baseline key* deliberately excludes the line number: grandfathered
findings in ``lint_baseline.json`` must survive unrelated edits that shift
code up or down, so the key is ``(file, rule, message)`` and the baseline
stores a per-key count (two identical hits in one file need two baseline
entries' worth of budget).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Tuple


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    #: Path as given to the engine, normalized to POSIX separators and made
    #: repo-relative when possible, so baselines are machine-portable.
    file: str
    line: int
    column: int
    rule: str
    message: str
    #: Actionable fix hint ("iterate sorted(...) instead", ...).
    suggestion: str = ""

    def location(self) -> str:
        """``file:line:column`` -- the clickable prefix of text reports."""
        return f"{self.file}:{self.line}:{self.column}"

    def baseline_key(self) -> Tuple[str, str, str]:
        """Line-insensitive identity used by the baseline (see module doc)."""
        return (self.file, self.rule, self.message)

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Finding":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown Finding field {unknown[0]!r}; known: {sorted(known)}"
            )
        return cls(**data)
