"""Unit-flow rules: suffix-inferred unit checking over the naming convention.

The repo encodes physical units in identifier suffixes (``execution_time_s``,
``p99_sojourn_ns``, ``link_bandwidth_bytes_per_s``, ``offered_rps``,
``flit_size_bytes``, ``latency_cycles`` -- see :mod:`repro.sim.units` for the
conversion constants).  These rules treat each suffix as a static unit tag
and flag flows that mix tags:

``unit-mixed-arith``
    ``+``/``-``/comparison where *both* operands carry known, incompatible
    unit tags (different dimension, or same dimension at different scales:
    ``a_ns + b_s`` is as wrong as ``a_ns + b_bytes``).  Multiplication and
    division are never flagged -- they are how legitimate conversions and
    derived quantities are written (``bytes / seconds``, ``t_s * 1e9``).

``unit-suffix-drop``
    A unit tag silently changing across a binding boundary: a function whose
    name carries tag U returning an expression tagged V, an assignment
    ``x_U = y_V``, or a keyword argument ``f(x_U=y_V)`` with U and V
    incompatible.  Conversions spelled as multiplications are untagged and
    therefore never flagged; the rule only fires when both sides carry
    explicit, conflicting tags.

Only identifiers (names, attributes, calls-by-name, subscripted containers)
are tagged; any arithmetic on an operand erases its tag, so false positives
require two *directly conflicting* identifier suffixes -- which is exactly
the situation the convention exists to prevent.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import RuleContext, register_rule

#: ``(suffix, dimension, scale)`` -- longest suffix first so ``_bytes_per_s``
#: wins over ``_per_s`` and ``_ns``/``_ms`` win over ``_s``.  A *unit* is the
#: ``(dimension, scale)`` pair; two units are compatible iff equal (same
#: dimension at a different scale still needs an explicit conversion).
UNIT_SUFFIXES: Tuple[Tuple[str, str, str], ...] = (
    ("_bytes_per_s", "bandwidth", "bytes/s"),
    ("_bits_per_s", "bandwidth", "bits/s"),
    ("_tbps", "bandwidth", "TB/s"),
    ("_gbps", "bandwidth", "GB/s"),
    ("_per_s", "rate", "1/s"),
    ("_rps", "rate", "1/s"),
    ("_cycles", "cycles", "cycles"),
    ("_ghz", "frequency", "GHz"),
    ("_mhz", "frequency", "MHz"),
    ("_hz", "frequency", "Hz"),
    ("_bytes", "size", "bytes"),
    ("_bits", "size", "bits"),
    ("_ns", "time", "ns"),
    ("_us", "time", "us"),
    ("_ms", "time", "ms"),
    ("_ps", "time", "ps"),
    ("_pj", "energy", "pJ"),
    ("_nj", "energy", "nJ"),
    ("_mw", "power", "mW"),
    ("_s", "time", "s"),
    ("_w", "power", "W"),
    ("_j", "energy", "J"),
)


def unit_of_name(name: str) -> Optional[Tuple[str, str]]:
    """The ``(dimension, scale)`` tag of an identifier, or ``None``."""
    for suffix, dimension, scale in UNIT_SUFFIXES:
        if name.endswith(suffix):
            return (dimension, scale)
    return None


def unit_of_node(node: ast.AST) -> Optional[Tuple[str, str]]:
    """The unit tag of an expression, or ``None`` when untagged.

    Tags flow through identifier lookups only: a name or attribute carries
    its own suffix, a call carries its callee's suffix (``to_seconds_s(x)``),
    a subscript carries its container's suffix (``latencies_ns[i]``), and
    unary minus is transparent.  Every other expression form -- including
    all arithmetic -- is untagged.
    """
    if isinstance(node, ast.Name):
        return unit_of_name(node.id)
    if isinstance(node, ast.Attribute):
        return unit_of_name(node.attr)
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name):
            return unit_of_name(node.func.id)
        if isinstance(node.func, ast.Attribute):
            return unit_of_name(node.func.attr)
        return None
    if isinstance(node, ast.Subscript):
        return unit_of_node(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return unit_of_node(node.operand)
    return None


def _describe(node: ast.AST, unit: Tuple[str, str], limit: int = 40) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse failure on exotic nodes
        text = type(node).__name__
    if len(text) > limit:
        text = text[: limit - 3] + "..."
    return f"'{text}' [{unit[1]}]"


_COMPARE_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


@register_rule(
    "unit-mixed-arith",
    family="units",
    summary="addition/subtraction/comparison of incompatible unit suffixes",
)
def check_mixed_arithmetic(context: RuleContext) -> Iterable[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(context.tree):
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
            left, right = unit_of_node(node.left), unit_of_node(node.right)
            if left and right and left != right:
                op = "adds" if isinstance(node.op, ast.Add) else "subtracts"
                findings.append(
                    context.finding(
                        node,
                        "unit-mixed-arith",
                        f"{op} {_describe(node.right, right)} "
                        f"{'to' if op == 'adds' else 'from'} "
                        f"{_describe(node.left, left)}",
                        "convert one operand explicitly "
                        "(see repro.sim.units constants)",
                    )
                )
        elif isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, _COMPARE_OPS):
                    continue
                left = unit_of_node(operands[index])
                right = unit_of_node(operands[index + 1])
                if left and right and left != right:
                    findings.append(
                        context.finding(
                            node,
                            "unit-mixed-arith",
                            f"compares {_describe(operands[index], left)} "
                            f"against {_describe(operands[index + 1], right)}",
                            "convert one operand explicitly "
                            "(see repro.sim.units constants)",
                        )
                    )
    return findings


def _target_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _function_returns(
    func: ast.AST,
) -> Iterable[ast.Return]:
    """``return`` statements belonging to ``func`` itself (not nested defs)."""
    stack: List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Return):
            yield node
        stack.extend(ast.iter_child_nodes(node))


@register_rule(
    "unit-suffix-drop",
    family="units",
    summary="unit suffix silently changing across a binding boundary",
)
def check_suffix_drop(context: RuleContext) -> Iterable[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(context.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            declared = unit_of_name(node.name)
            if not declared:
                continue
            for ret in _function_returns(node):
                if ret.value is None:
                    continue
                actual = unit_of_node(ret.value)
                if actual and actual != declared:
                    findings.append(
                        context.finding(
                            ret,
                            "unit-suffix-drop",
                            f"function {node.name}() [{declared[1]}] returns "
                            f"{_describe(ret.value, actual)}",
                            "convert the value or rename the function to "
                            "match the returned unit",
                        )
                    )
        elif isinstance(node, ast.Assign):
            value_unit = unit_of_node(node.value)
            if not value_unit:
                continue
            for target in node.targets:
                name = _target_name(target)
                if name is None:
                    continue
                declared = unit_of_name(name)
                if declared and declared != value_unit:
                    findings.append(
                        context.finding(
                            node,
                            "unit-suffix-drop",
                            f"assigns {_describe(node.value, value_unit)} "
                            f"to '{name}' [{declared[1]}]",
                            "convert the value or rename the target to "
                            "match its unit",
                        )
                    )
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value_unit = unit_of_node(node.value)
            name = _target_name(node.target)
            if value_unit and name:
                declared = unit_of_name(name)
                if declared and declared != value_unit:
                    findings.append(
                        context.finding(
                            node,
                            "unit-suffix-drop",
                            f"assigns {_describe(node.value, value_unit)} "
                            f"to '{name}' [{declared[1]}]",
                            "convert the value or rename the target to "
                            "match its unit",
                        )
                    )
        elif isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg is None:
                    continue
                declared = unit_of_name(keyword.arg)
                if not declared:
                    continue
                actual = unit_of_node(keyword.value)
                if actual and actual != declared:
                    findings.append(
                        context.finding(
                            keyword.value,
                            "unit-suffix-drop",
                            f"passes {_describe(keyword.value, actual)} as "
                            f"keyword '{keyword.arg}' [{declared[1]}]",
                            "convert the value to the keyword's unit",
                        )
                    )
    return findings
