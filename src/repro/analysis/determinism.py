"""Determinism rules: nondeterminism hazards in simulation-path code.

Every guarantee this reproduction makes -- bit-identical results across
``--jobs 1``/``--jobs N``, golden trace digests, fault schedules that are
pure functions of seeds -- dies by one of a handful of Python idioms.
These rules catch the hazard classes at diff time:

``det-set-iter``
    Iteration over a ``set``/``frozenset`` expression feeding ordered
    computation (a ``for`` statement, a list/generator comprehension,
    ``list()``/``tuple()``/``enumerate()``/``str.join()``).  Set iteration
    order depends on insertion history and -- for str/tuple elements -- on
    ``PYTHONHASHSEED``, so any ordered consumer inherits a per-process
    order.  Building another set/dict-key test from a set is order-free
    and not flagged; wrap the iterable in ``sorted(...)`` to fix a hit.

``det-unseeded-random``
    Calls through the module-level ``random.*`` API (including
    ``random.seed``): module-level state is shared per process, so two
    call sites interleave differently under any reordering and workers
    diverge from serial runs.  Every draw must come from a seeded
    ``random.Random(seed)`` instance owned by the caller.

``det-wall-clock``
    Wall-clock, environment and identity reads in simulated-time code:
    ``time.time``/``perf_counter``/``monotonic``..., ``datetime.now``,
    ``os.environ``/``os.getenv``, ``os.urandom``, ``uuid.uuid1/uuid4``,
    and the builtins ``id()``/``hash()`` (address- and
    ``PYTHONHASHSEED``-dependent).  Exempt in the allowlisted harness/obs
    zone, where wall-clock profiling and env plumbing are the point.

``det-float-accum``
    Float accumulation whose order depends on set iteration: ``x += ...``
    inside a ``for`` loop over a set expression, or ``sum()`` applied to
    a set (or to a generator over one).  Float addition is not
    associative, so the rounded total varies with iteration order even
    when the element *set* is identical.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import RuleContext, register_rule

#: Paths where wall-clock/env reads are the point of the code, not a hazard:
#: harness timing/profiling, observability, CLI/process plumbing and this
#: analysis package itself.  Everything else -- including the API layer and
#: the sweep engine, which time their phases on purpose -- carries its reads
#: as baselined findings or inline pragmas, so *new* reads still gate.
WALL_CLOCK_ZONES: Tuple[str, ...] = (
    "harness/",
    "obs/",
    "cli.py",
    "analysis/",
)

#: set-producing method names (defined on no other stdlib builtin type).
_SET_METHODS = frozenset(
    {"intersection", "union", "difference", "symmetric_difference"}
)

#: Builtins whose result does not depend on the argument's iteration order
#: (``sum`` is order-dependent for floats and handled by det-float-accum).
_ORDER_FREE_CALLS = frozenset(
    {"sorted", "min", "max", "len", "any", "all", "set", "frozenset", "bool"}
)

#: Builtins that materialize their argument's order into an ordered result.
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate", "iter"})

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    """Is ``node`` statically known to evaluate to a set/frozenset?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in _SET_METHODS:
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    return False


def _scope_walk(body: Iterable[ast.AST]) -> Iterator[ast.AST]:
    """Nodes of one scope in document order, not descending into nested
    function/class scopes (each gets its own name table)."""
    stack: List[ast.AST] = list(body)
    stack.reverse()
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SCOPE_NODES):
            continue
        children = list(ast.iter_child_nodes(node))
        children.reverse()
        stack.extend(children)


def _snippet(node: ast.AST, limit: int = 48) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse failure on exotic nodes
        text = type(node).__name__
    return text if len(text) <= limit else text[: limit - 3] + "..."


class _ScopeScanner:
    """One pass over one scope: tracks set-typed names in statement order
    and records the iteration/accumulation findings for both set rules."""

    def __init__(self, context: RuleContext) -> None:
        self.context = context
        self.set_iter: List[Finding] = []
        self.float_accum: List[Finding] = []

    def scan(self, body: Iterable[ast.AST]) -> None:
        set_names: Set[str] = set()
        exempt_genexps: Set[int] = set()
        for node in _scope_walk(body):
            if isinstance(node, _SCOPE_NODES):
                inner = node.body if not isinstance(node, ast.Lambda) else [node.body]
                self.scan(inner)
                continue
            if isinstance(node, ast.Assign):
                self._track_assignment(node, set_names)
            elif isinstance(node, ast.Call):
                self._check_call(node, set_names, exempt_genexps)
            elif isinstance(node, ast.For):
                self._check_for(node, set_names)
            elif isinstance(node, (ast.ListComp, ast.DictComp)):
                self._check_comprehension(node, set_names)
            elif isinstance(node, ast.GeneratorExp):
                if id(node) not in exempt_genexps:
                    self._check_comprehension(node, set_names)

    # -- name tracking -------------------------------------------------------
    def _track_assignment(self, node: ast.Assign, set_names: Set[str]) -> None:
        if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
            return
        name = node.targets[0].id
        if _is_set_expr(node.value, set_names):
            set_names.add(name)
        else:
            # Reassigned to something non-set: the name is no longer a
            # provable set (stay conservative, never guess).
            set_names.discard(name)

    # -- iteration sites -----------------------------------------------------
    def _check_for(self, node: ast.For, set_names: Set[str]) -> None:
        if not _is_set_expr(node.iter, set_names):
            return
        self.set_iter.append(
            self.context.finding(
                node.iter,
                "det-set-iter",
                f"for-loop iterates the set expression "
                f"'{_snippet(node.iter)}' in nondeterministic order",
                "iterate sorted(...) over the set",
            )
        )
        for inner in _scope_walk(node.body):
            if isinstance(inner, ast.AugAssign) and isinstance(inner.op, ast.Add):
                self.float_accum.append(
                    self.context.finding(
                        inner,
                        "det-float-accum",
                        f"accumulation '{_snippet(inner)}' inside a loop "
                        f"over the set expression '{_snippet(node.iter)}' "
                        f"is iteration-order dependent",
                        "iterate sorted(...) or restructure as math.fsum "
                        "over a sorted sequence",
                    )
                )

    def _check_comprehension(self, node: ast.AST, set_names: Set[str]) -> None:
        kind = {
            ast.ListComp: "list comprehension",
            ast.DictComp: "dict comprehension",
            ast.GeneratorExp: "generator expression",
        }[type(node)]
        for generator in node.generators:
            if _is_set_expr(generator.iter, set_names):
                self.set_iter.append(
                    self.context.finding(
                        generator.iter,
                        "det-set-iter",
                        f"{kind} iterates the set expression "
                        f"'{_snippet(generator.iter)}' in nondeterministic "
                        f"order",
                        "iterate sorted(...) over the set",
                    )
                )

    def _check_call(
        self, node: ast.Call, set_names: Set[str], exempt_genexps: Set[int]
    ) -> None:
        name = _call_name(node)
        if name in _ORDER_FREE_CALLS:
            # sorted({...}) / min(x for x in s) are the sanctioned consumers;
            # their generator arguments must not double-report.
            for arg in node.args:
                if isinstance(arg, ast.GeneratorExp):
                    exempt_genexps.add(id(arg))
            return
        if name == "sum" and node.args:
            arg = node.args[0]
            if isinstance(arg, ast.GeneratorExp):
                exempt_genexps.add(id(arg))
                if any(
                    _is_set_expr(g.iter, set_names) for g in arg.generators
                ):
                    self.float_accum.append(
                        self.context.finding(
                            node,
                            "det-float-accum",
                            f"sum() over a generator driven by a set "
                            f"expression in '{_snippet(node)}' is "
                            f"iteration-order dependent",
                            "sum over sorted(...) instead",
                        )
                    )
            elif _is_set_expr(arg, set_names):
                self.float_accum.append(
                    self.context.finding(
                        node,
                        "det-float-accum",
                        f"sum() over the set expression '{_snippet(arg)}' "
                        f"is iteration-order dependent",
                        "sum over sorted(...) instead",
                    )
                )
            return
        if name in _ORDER_SENSITIVE_CALLS and node.args:
            if _is_set_expr(node.args[0], set_names):
                self.set_iter.append(
                    self.context.finding(
                        node,
                        "det-set-iter",
                        f"{name}() materializes the set expression "
                        f"'{_snippet(node.args[0])}' in nondeterministic "
                        f"order",
                        "apply sorted(...) first",
                    )
                )
            return
        if (
            name == "join"
            and isinstance(node.func, ast.Attribute)
            and node.args
            and _is_set_expr(node.args[0], set_names)
        ):
            self.set_iter.append(
                self.context.finding(
                    node,
                    "det-set-iter",
                    f"str.join() over the set expression "
                    f"'{_snippet(node.args[0])}' renders in "
                    f"nondeterministic order",
                    "join sorted(...) instead",
                )
            )


def _shared_scan(context: RuleContext) -> _ScopeScanner:
    """Both set rules share one scope scan; cache it on the context."""
    cached = getattr(context, "_set_scan", None)
    if cached is None:
        cached = _ScopeScanner(context)
        cached.scan(context.tree.body)
        context._set_scan = cached  # type: ignore[attr-defined]
    return cached


@register_rule(
    "det-set-iter",
    family="determinism",
    summary="set iteration feeding ordered computation",
)
def check_set_iteration(context: RuleContext) -> Iterable[Finding]:
    return _shared_scan(context).set_iter


@register_rule(
    "det-float-accum",
    family="determinism",
    summary="float accumulation ordered by set iteration",
)
def check_float_accumulation(context: RuleContext) -> Iterable[Finding]:
    return _shared_scan(context).float_accum


# ---------------------------------------------------------------------------
# det-unseeded-random
# ---------------------------------------------------------------------------

def _module_aliases(tree: ast.AST, module: str) -> Set[str]:
    """Names the ``module`` is importable under in this file."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or alias.name)
    return aliases


def _from_imports(tree: ast.AST, module: str) -> Dict[str, str]:
    """``local name -> original name`` for ``from module import ...``."""
    imported: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                imported[alias.asname or alias.name] = alias.name
    return imported


#: random-module entry points that are fine to use: seeded generator classes.
_SEEDED_RANDOM_TYPES = frozenset({"Random", "SystemRandom"})


@register_rule(
    "det-unseeded-random",
    family="determinism",
    summary="module-level random.* call instead of a seeded Random instance",
)
def check_unseeded_random(context: RuleContext) -> Iterable[Finding]:
    aliases = _module_aliases(context.tree, "random")
    from_names = {
        local: original
        for local, original in _from_imports(context.tree, "random").items()
        if original not in _SEEDED_RANDOM_TYPES
    }
    if not aliases and not from_names:
        return []
    findings = []
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in aliases
            and func.attr not in _SEEDED_RANDOM_TYPES
        ):
            findings.append(
                context.finding(
                    node,
                    "det-unseeded-random",
                    f"call to module-level random.{func.attr}() shares "
                    f"process-global RNG state",
                    "draw from a seeded random.Random(seed) instance",
                )
            )
        elif isinstance(func, ast.Name) and func.id in from_names:
            findings.append(
                context.finding(
                    node,
                    "det-unseeded-random",
                    f"call to random.{from_names[func.id]}() (imported as "
                    f"{func.id}) shares process-global RNG state",
                    "draw from a seeded random.Random(seed) instance",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# det-wall-clock
# ---------------------------------------------------------------------------

_TIME_FUNCTIONS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "sleep",
    }
)

_DATETIME_FUNCTIONS = frozenset({"now", "utcnow", "today"})

_UUID_FUNCTIONS = frozenset({"uuid1", "uuid4"})


@register_rule(
    "det-wall-clock",
    family="determinism",
    summary="wall-clock/env/identity read in simulated-time code",
    exempt_zones=WALL_CLOCK_ZONES,
)
def check_wall_clock(context: RuleContext) -> Iterable[Finding]:
    tree = context.tree
    time_aliases = _module_aliases(tree, "time")
    os_aliases = _module_aliases(tree, "os")
    uuid_aliases = _module_aliases(tree, "uuid")
    datetime_names = set(_from_imports(tree, "datetime")) | _module_aliases(
        tree, "datetime"
    )
    time_from = {
        local
        for local, original in _from_imports(tree, "time").items()
        if original in _TIME_FUNCTIONS
    }
    findings = []

    def hit(node: ast.AST, what: str, fix: str) -> None:
        findings.append(
            context.finding(
                node,
                "det-wall-clock",
                f"{what} in simulated-time code",
                fix,
            )
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id in os_aliases
                and node.attr == "environ"
            ):
                hit(
                    node,
                    "os.environ read",
                    "thread configuration through the scenario/spec tree",
                )
            continue
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in ("id", "hash") and node.args:
                hit(
                    node,
                    f"builtin {func.id}() (address/PYTHONHASHSEED dependent)",
                    "key on a stable field or an explicit counter",
                )
            elif func.id in time_from:
                hit(
                    node,
                    f"wall-clock call {func.id}()",
                    "use simulated time from the event engine",
                )
            continue
        if not isinstance(func, ast.Attribute):
            continue
        owner = func.value
        if isinstance(owner, ast.Name):
            if owner.id in time_aliases and func.attr in _TIME_FUNCTIONS:
                hit(
                    node,
                    f"wall-clock call time.{func.attr}()",
                    "use simulated time from the event engine",
                )
            elif owner.id in os_aliases and func.attr == "getenv":
                hit(
                    node,
                    "os.getenv read",
                    "thread configuration through the scenario/spec tree",
                )
            elif owner.id in os_aliases and func.attr == "urandom":
                hit(
                    node,
                    "os.urandom read",
                    "derive entropy from the scenario seed",
                )
            elif owner.id in uuid_aliases and func.attr in _UUID_FUNCTIONS:
                hit(
                    node,
                    f"uuid.{func.attr}() (host/clock dependent)",
                    "derive identifiers from seeds or counters",
                )
            elif owner.id in datetime_names and func.attr in _DATETIME_FUNCTIONS:
                hit(
                    node,
                    f"datetime {func.attr}() read",
                    "use simulated time from the event engine",
                )
        elif (
            isinstance(owner, ast.Attribute)
            and isinstance(owner.value, ast.Name)
            and owner.value.id in datetime_names
            and owner.attr == "datetime"
            and func.attr in _DATETIME_FUNCTIONS
        ):
            hit(
                node,
                f"datetime.datetime.{func.attr}() read",
                "use simulated time from the event engine",
            )
    return findings
