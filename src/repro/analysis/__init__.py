"""Static analysis for the reproduction: determinism and unit-flow lint.

``corona-repro lint`` is built on this package.  Importing it registers the
two stock rule families (:mod:`~repro.analysis.determinism`,
:mod:`~repro.analysis.unitflow`) in :data:`~repro.analysis.rules.RULES`;
additional rules register through the same decorator.  The runtime
counterpart -- fresh-process replay with digest comparison -- lives in
:mod:`~repro.analysis.runtime`.
"""

from repro.analysis.baseline import (
    BASELINE_FORMAT,
    load_baseline,
    partition_findings,
    write_baseline,
)
from repro.analysis.engine import (
    PARSE_ERROR_RULE,
    LintReport,
    analyze_paths,
    analyze_source,
    iter_python_files,
    parse_pragmas,
)
from repro.analysis.findings import Finding
from repro.analysis.reporters import (
    LINT_FORMAT,
    render_json,
    render_rule_catalog,
    render_text,
)
from repro.analysis.rules import (
    RULES,
    AnalysisError,
    Rule,
    RuleCollisionError,
    RuleContext,
    RuleRegistry,
    UnknownRuleError,
    register_rule,
)
from repro.analysis.runtime import (
    DEFAULT_REPLICAS,
    DeterminismCheck,
    check_determinism,
    compare_replicas,
    result_digest,
)

# Importing the rule modules registers the stock rule families.
from repro.analysis import determinism as _determinism  # noqa: F401  (registers)
from repro.analysis import unitflow as _unitflow  # noqa: F401  (registers)

__all__ = [
    "AnalysisError",
    "BASELINE_FORMAT",
    "DEFAULT_REPLICAS",
    "DeterminismCheck",
    "Finding",
    "LINT_FORMAT",
    "LintReport",
    "PARSE_ERROR_RULE",
    "RULES",
    "Rule",
    "RuleCollisionError",
    "RuleContext",
    "RuleRegistry",
    "UnknownRuleError",
    "analyze_paths",
    "analyze_source",
    "check_determinism",
    "compare_replicas",
    "iter_python_files",
    "load_baseline",
    "parse_pragmas",
    "partition_findings",
    "register_rule",
    "render_json",
    "render_rule_catalog",
    "render_text",
    "result_digest",
    "write_baseline",
]
