"""Reporters: render a lint run for humans (text) or machines (JSON).

The JSON schema is versioned (``corona-lint/1``) and covered by a test, so
CI consumers (the findings artifact, future dashboards) can rely on it.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.engine import LintReport
from repro.analysis.findings import Finding
from repro.analysis.rules import RULES

LINT_FORMAT = "corona-lint/1"


def render_json(
    report: LintReport,
    new: Sequence[Finding],
    baselined: Sequence[Finding],
    stale: Baseline,
) -> Dict[str, object]:
    """The machine-readable report (stable schema ``corona-lint/1``)."""
    new_keys = {id(f) for f in new}
    findings = []
    for finding in sorted([*new, *baselined]):
        entry = dict(finding.to_dict())
        entry["new"] = id(finding) in new_keys
        findings.append(entry)
    return {
        "format": LINT_FORMAT,
        "files_scanned": report.files_scanned,
        "rules_run": list(report.rules_run),
        "summary": {
            "total": len(new) + len(baselined),
            "new": len(new),
            "baselined": len(baselined),
            "suppressed": len(report.suppressed),
            "stale_baseline": sum(stale.values()),
        },
        "findings": findings,
        "stale_baseline": [
            {"file": file, "rule": rule, "message": message, "count": count}
            for (file, rule, message), count in sorted(stale.items())
        ],
    }


def render_text(
    report: LintReport,
    new: Sequence[Finding],
    baselined: Sequence[Finding],
    stale: Baseline,
) -> str:
    """The human-readable report: one line per new finding, then a summary."""
    lines: List[str] = []
    for finding in sorted(new):
        line = f"{finding.location()}: {finding.rule}: {finding.message}"
        if finding.suggestion:
            line += f" (fix: {finding.suggestion})"
        lines.append(line)
    if stale:
        lines.append("")
        lines.append(
            f"note: {sum(stale.values())} stale baseline entr"
            f"{'y' if sum(stale.values()) == 1 else 'ies'} no longer occur; "
            f"refresh with --update-baseline:"
        )
        for (file, rule, message), count in sorted(stale.items()):
            lines.append(f"  {file}: {rule}: {message} (x{count})")
    lines.append("")
    lines.append(
        f"{report.files_scanned} files scanned, "
        f"{len(report.rules_run)} rules: "
        f"{len(new)} new, {len(baselined)} baselined, "
        f"{len(report.suppressed)} suppressed"
    )
    return "\n".join(lines)


def render_rule_catalog() -> str:
    """The registered rules, one line each (``corona-repro lint --rules``)."""
    lines = []
    for rule in RULES.rules():
        zones = (
            f" [exempt: {', '.join(rule.exempt_zones)}]"
            if rule.exempt_zones
            else ""
        )
        lines.append(f"{rule.rule_id} ({rule.family}): {rule.summary}{zones}")
    return "\n".join(lines)
