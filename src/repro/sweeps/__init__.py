"""Declarative parameter sweeps over the Scenario API.

One :class:`SweepSpec` -- a base scenario plus named axes writing value
lists into its field paths -- expands into an explicit grid of
``(point_id, axis_values, Scenario)`` points, executes through the
existing serial/parallel pair runners (bit-identical across ``--jobs``),
checkpoints each completed point to an on-disk manifest (so a killed run
resumes without re-executing anything), and emits every result as a
long-form record into JSON/CSV sinks.

Quickstart::

    from repro.api import ScaleSpec, Scenario, SystemSpec, WorkloadSpec
    from repro.sweeps import SweepAxis, SweepSpec, run_sweep

    spec = SweepSpec(
        name="gap-study",
        base=Scenario(
            system=SystemSpec(configurations=("LMesh/ECM",)),
            workloads=(WorkloadSpec(name="Uniform", num_requests=4_000),),
            scale=ScaleSpec(seed=1),
        ),
        axes=(
            SweepAxis(name="gap",
                      path="workloads[0].params.mean_gap_cycles",
                      values=(20.0, 40.0, 80.0)),
            SweepAxis(name="configuration",
                      path="system.configurations",
                      values=(["LMesh/ECM"], ["XBar/OCM"])),
        ),
    )
    outcome = run_sweep(spec, directory="sweep-out", jobs=0)
    for record in outcome.records:
        print(record.point_id, record.result.achieved_bandwidth_tbps)

or, file-driven: ``corona-repro sweep run spec.json --directory out``
(``sweep expand`` previews the grid, ``sweep status`` reports progress,
re-running resumes).  Importing this package registers the stock sweeps
(``coherence-sweep``, ``sensitivity``) in :data:`repro.api.registry.SWEEPS`.
"""

from repro.api.registry import SWEEPS, build_sweep, register_sweep
from repro.sweeps.engine import (
    MANIFEST_NAME,
    POINTS_NAME,
    SweepRecord,
    SweepRunResult,
    SweepStatus,
    TraceCache,
    run_sweep,
    spec_digest,
    sweep_status,
    workload_signature,
)
from repro.sweeps.library import (
    coherence_sweep_spec,
    latency_throughput_sweep_spec,
    sensitivity_sweep_spec,
)
from repro.sweeps.aggregate import (
    aggregation_report_section,
    axis_divergence_rows,
    axis_value_geomeans,
    detect_crossovers,
)
from repro.sweeps.saturation import detect_knee, saturation_rows
from repro.sweeps.spec import (
    SWEEP_FORMAT,
    SweepAxis,
    SweepError,
    SweepPoint,
    SweepSpec,
    expand,
    load_sweep,
    point_id_for,
)


def build_registered_sweep(name: str, **params) -> SweepSpec:
    """Build a registered sweep spec by name (e.g. ``"coherence-sweep"``)."""
    return build_sweep(name, **params)


__all__ = [
    # spec
    "SWEEP_FORMAT",
    "SweepAxis",
    "SweepError",
    "SweepPoint",
    "SweepSpec",
    "expand",
    "load_sweep",
    "point_id_for",
    # engine
    "MANIFEST_NAME",
    "POINTS_NAME",
    "SweepRecord",
    "SweepRunResult",
    "SweepStatus",
    "TraceCache",
    "run_sweep",
    "spec_digest",
    "sweep_status",
    "workload_signature",
    # registry
    "SWEEPS",
    "register_sweep",
    "build_sweep",
    "build_registered_sweep",
    # stock specs
    "coherence_sweep_spec",
    "sensitivity_sweep_spec",
    "latency_throughput_sweep_spec",
    # saturation analysis
    "detect_knee",
    "saturation_rows",
    # axis aggregation
    "aggregation_report_section",
    "axis_divergence_rows",
    "axis_value_geomeans",
    "detect_crossovers",
]
