"""Sweep-level aggregation: geomean per axis value and crossover detection.

The long-form records of a sweep answer "what happened at each point"; this
module answers the two questions a sweep is usually run to decide:

* **Per-axis geomeans** -- for each axis value, the geometric mean of a
  result metric per configuration over every record at that value, i.e.
  the aggregate trend along each axis (the paper's own speedup quotes are
  geomeans, :func:`repro.sim.stats.geometric_mean`).
* **Crossovers** -- axis intervals where the configuration ranking flips
  (configuration A beats B at one value and loses at the next), the
  knee-adjacent facts a flat table hides.

Both feed the sweep markdown report
(:func:`aggregation_report_section`), and the diff engine reuses
:func:`axis_divergence_rows` to rank *which axis value* moved most between
two runs of the same sweep.
"""

from __future__ import annotations

import json
from math import log
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.sim.stats import geometric_mean

#: Metric aggregated by default (lower is better: execution time).
DEFAULT_METRIC = "execution_time_s"


def _metric_value(result, metric: str) -> Optional[float]:
    value = getattr(result, metric, None)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _value_key(value: object) -> object:
    """A hashable stand-in for an axis value (axes may write lists, e.g. a
    configuration axis whose values are configuration-name lists).  Axis
    values come from JSON specs, so containers are lists/dicts."""
    if isinstance(value, (list, dict)):
        return json.dumps(value, sort_keys=True, default=repr)
    return value


def _axis_value_order(records, axis: str) -> List[object]:
    """Distinct values of one axis in record order (the expansion order of
    the grid, which is the user's declared order)."""
    seen: Dict[object, object] = {}
    for record in records:
        if axis in record.axis_values:
            value = record.axis_values[axis]
            seen.setdefault(_value_key(value), value)
    return list(seen.values())


def axis_value_geomeans(
    records: Sequence,
    axis_names: Sequence[str],
    metric: str = DEFAULT_METRIC,
) -> Dict[str, List[Tuple[object, Dict[str, float]]]]:
    """Per axis: ordered ``(value, {configuration: geomean})`` aggregates.

    ``records`` are :class:`~repro.sweeps.engine.SweepRecord`-shaped (any
    object with ``axis_values`` and ``result``).  Records whose metric is
    missing or non-positive are skipped (geomeans need positive values).
    """
    table: Dict[str, List[Tuple[object, Dict[str, float]]]] = {}
    for axis in axis_names:
        rows: List[Tuple[object, Dict[str, float]]] = []
        for value in _axis_value_order(records, axis):
            grouped: Dict[str, List[float]] = {}
            for record in records:
                if _value_key(record.axis_values.get(axis)) != _value_key(value):
                    continue
                sample = _metric_value(record.result, metric)
                if sample is not None and sample > 0:
                    grouped.setdefault(
                        record.result.configuration, []
                    ).append(sample)
            if grouped:
                rows.append(
                    (
                        value,
                        {
                            configuration: geometric_mean(samples)
                            for configuration, samples in grouped.items()
                        },
                    )
                )
        if rows:
            table[axis] = rows
    return table


def detect_crossovers(
    geomeans: Mapping[str, Sequence[Tuple[object, Mapping[str, float]]]],
) -> List[Dict[str, object]]:
    """Configuration-ranking flips between consecutive axis values.

    For every axis and every configuration pair present at two consecutive
    values, reports an entry when the sign of their geomean difference
    flips -- ``{"axis", "between": (v1, v2), "leader_before",
    "leader_after"}``.  Ties (equal geomeans) never count as a flip.
    """
    crossovers: List[Dict[str, object]] = []
    for axis, rows in geomeans.items():
        for (value_a, means_a), (value_b, means_b) in zip(rows, rows[1:]):
            shared = sorted(set(means_a) & set(means_b))
            for i, first in enumerate(shared):
                for second in shared[i + 1:]:
                    before = means_a[first] - means_a[second]
                    after = means_b[first] - means_b[second]
                    if before == 0.0 or after == 0.0:
                        continue
                    if (before < 0) == (after < 0):
                        continue
                    # Lower metric wins (execution time): the leader is the
                    # configuration with the smaller geomean.
                    crossovers.append(
                        {
                            "axis": axis,
                            "between": (value_a, value_b),
                            "leader_before": first if before < 0 else second,
                            "leader_after": first if after < 0 else second,
                        }
                    )
    return crossovers


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, (list, tuple)):
        return "/".join(_format_value(item) for item in value)
    return str(value)


def aggregation_report_section(
    records: Sequence,
    axis_names: Sequence[str],
    metric: str = DEFAULT_METRIC,
) -> List[str]:
    """Markdown lines of the per-axis aggregation (empty when no axis has
    aggregable records), appended to the sweep report."""
    geomeans = axis_value_geomeans(records, axis_names, metric)
    if not geomeans:
        return []
    lines: List[str] = ["## Axis aggregation", ""]
    lines.append(
        f"Geometric mean of `{metric}` per axis value (over every record "
        f"at that value)."
    )
    lines.append("")
    for axis, rows in geomeans.items():
        configurations = sorted(
            {name for _, means in rows for name in means}
        )
        header = [axis] + configurations
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|---" * len(header) + "|")
        for value, means in rows:
            cells = [_format_value(value)] + [
                f"{means[name] * 1e6:.2f} us" if name in means else "-"
                for name in configurations
            ]
            lines.append("| " + " | ".join(cells) + " |")
        lines.append("")
    crossovers = detect_crossovers(geomeans)
    if crossovers:
        lines.append("Crossovers (configuration ranking flips):")
        lines.append("")
        for crossover in crossovers:
            v1, v2 = crossover["between"]
            lines.append(
                f"- `{crossover['axis']}`: {crossover['leader_before']} "
                f"leads at {_format_value(v1)}, "
                f"{crossover['leader_after']} leads at {_format_value(v2)}"
            )
        lines.append("")
    return lines


def axis_divergence_rows(
    baseline_records: Sequence,
    current_records: Sequence,
    axis_names: Sequence[str],
    metric: str = DEFAULT_METRIC,
) -> List[Dict[str, object]]:
    """Axis values ranked by how much ``metric`` moved between two runs.

    For each (axis, value) pair present in both runs, the geomean of the
    per-point current/baseline metric ratios (points aligned by
    ``(point_id, configuration, workload)``); entries are ranked by
    ``|log(ratio)|`` descending, so the axis value that drifted most --
    in either direction -- comes first.  The diff engine uses this to say
    *where along the sweep* two runs diverged, not just which pairs.
    """
    def _index(records) -> Dict[Tuple[str, str, str], object]:
        return {
            (
                getattr(record, "point_id", ""),
                record.result.configuration,
                record.result.workload,
            ): record
            for record in records
        }

    baseline_index = _index(baseline_records)
    rows: List[Dict[str, object]] = []
    for axis in axis_names:
        for value in _axis_value_order(current_records, axis):
            ratios: List[float] = []
            for record in current_records:
                if _value_key(record.axis_values.get(axis)) != _value_key(value):
                    continue
                key = (
                    getattr(record, "point_id", ""),
                    record.result.configuration,
                    record.result.workload,
                )
                base = baseline_index.get(key)
                if base is None:
                    continue
                current_value = _metric_value(record.result, metric)
                base_value = _metric_value(base.result, metric)
                if (
                    current_value is not None
                    and base_value is not None
                    and current_value > 0
                    and base_value > 0
                ):
                    ratios.append(current_value / base_value)
            if ratios:
                ratio = geometric_mean(ratios)
                rows.append(
                    {
                        "axis": axis,
                        "value": value,
                        "metric": metric,
                        "geomean_ratio": ratio,
                        "magnitude": abs(log(ratio)),
                        "pairs": len(ratios),
                    }
                )
    rows.sort(
        key=lambda row: (
            -row["magnitude"],
            row["axis"],
            _format_value(row["value"]),
        )
    )
    return rows


def relative_drift(ratio: float) -> float:
    """``|ratio - 1|`` clipped at 0 -- the fractional drift a geomean ratio
    represents (used by the diff report's axis table)."""
    return abs(ratio - 1.0)


__all__ = [
    "DEFAULT_METRIC",
    "aggregation_report_section",
    "axis_divergence_rows",
    "axis_value_geomeans",
    "detect_crossovers",
    "relative_drift",
]
