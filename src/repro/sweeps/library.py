"""Stock sweep specs: the built-in studies re-expressed declaratively.

Importing :mod:`repro.sweeps` registers these under ``@register_sweep``, so
``corona-repro sweep run coherence-sweep`` (or ``sensitivity``) runs them by
name.  They are also the re-expression of the two seed *experiments*: the
``coherence-sweep`` experiment now builds :func:`coherence_sweep_spec` and
executes it through the sweep engine, reproducing the legacy
:func:`~repro.harness.experiments.coherence_sweep` numbers exactly
(equivalence-tested) while additionally emitting the long-form JSON/CSV
records a report section cannot carry.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.api.registry import register_sweep
from repro.api.scenario import (
    OutputSpec,
    ScaleSpec,
    Scenario,
    SystemSpec,
    WorkloadSpec,
)
from repro.coherence.engine import CoherenceConfig
from repro.coherence.sharing import SharingProfile
from repro.core.config import CORONA_DEFAULT
from repro.harness.experiments import (
    COHERENCE_SWEEP_CONFIGURATIONS,
    COHERENCE_SWEEP_FRACTIONS,
)
from repro.sweeps.spec import SweepAxis, SweepSpec
from repro.trace.arrival import ArrivalSpec


def coherence_sweep_spec(
    fractions: Sequence[float] = COHERENCE_SWEEP_FRACTIONS,
    configurations: Sequence[str] = COHERENCE_SWEEP_CONFIGURATIONS,
    num_requests: int = 8_000,
    seed: int = 1,
    coherence: Optional[CoherenceConfig] = None,
    sharing_kwargs: Optional[Mapping[str, object]] = None,
    overrides: Optional[Mapping[str, object]] = None,
    modules: Sequence[str] = (),
    jobs: int = 1,
    output: OutputSpec = OutputSpec(),
) -> SweepSpec:
    """The sharing-fraction sweep as a declarative grid.

    One point per (sharing fraction, configuration) pair -- the fraction
    axis zips with a label axis renaming the workload ``Uniform s=<f>``
    exactly like the legacy sweep, and the configuration axis rewrites
    ``system.configurations`` one name at a time.  Points sharing a
    fraction share a workload signature, so the engine generates each
    fraction's trace once, like the legacy loop did.
    """
    overrides = dict(overrides or {})
    params: dict = {"name": f"Uniform s={fractions[0]:g}"}
    if overrides:
        # Trace shape follows the overridden architecture, exactly like the
        # legacy sweep's workload_kwargs.
        params["num_clusters"] = CORONA_DEFAULT.with_overrides(
            overrides
        ).num_clusters
    base = Scenario(
        name="coherence-sweep-base",
        description="one (fraction, configuration) point of the grid",
        system=SystemSpec(
            configurations=(configurations[0],), overrides=overrides
        ),
        workloads=(
            WorkloadSpec(
                name="Uniform",
                params=params,
                sharing=SharingProfile(
                    fraction=fractions[0], **dict(sharing_kwargs or {})
                ),
                num_requests=num_requests,
            ),
        ),
        scale=ScaleSpec(tier="quick", seed=seed),
        coherence=coherence or CoherenceConfig(),
        modules=tuple(modules),
    )
    return SweepSpec(
        name="coherence-sweep",
        description=(
            "Sharing-fraction sweep of a Uniform workload: broadcast-bus "
            "invalidation delivery (photonic) vs per-sharer unicasts "
            "(electrical meshes)."
        ),
        base=base,
        axes=(
            SweepAxis(
                name="fraction",
                path="workloads[0].sharing.fraction",
                values=tuple(fractions),
            ),
            SweepAxis(
                name="label",
                path="workloads[0].params.name",
                values=tuple(f"Uniform s={f:g}" for f in fractions),
                zip_with="fraction",
            ),
            SweepAxis(
                name="configuration",
                path="system.configurations",
                values=tuple([name] for name in configurations),
            ),
        ),
        jobs=jobs,
        output=output,
    )


@register_sweep("coherence-sweep")
def _registered_coherence_sweep(**params) -> SweepSpec:
    """Sharing-fraction coherence-cost grid (see ``evaluate --coherence``)."""
    return coherence_sweep_spec(**params)


def sensitivity_sweep_spec(
    depths: Sequence[int] = (1, 2, 4, 8, 16),
    configuration: str = "XBar/OCM",
    num_requests: int = 8_000,
    seed: int = 1,
    jobs: int = 1,
    output: OutputSpec = OutputSpec(),
) -> SweepSpec:
    """The architectural half of the sensitivity study as a grid.

    Sweeps the per-thread outstanding-miss window of a Uniform replay on
    one configuration -- the declarative re-expression of
    :func:`~repro.harness.sensitivity.window_depth_sensitivity` (the
    physical link-budget sweeps have no replay, so they stay functions; the
    ``sensitivity`` experiment emits their records directly).
    """
    base = Scenario(
        name="sensitivity-base",
        description="one window-depth point of the sensitivity grid",
        system=SystemSpec(configurations=(configuration,)),
        workloads=(
            WorkloadSpec(
                name="Uniform",
                params={"window": depths[0]},
                num_requests=num_requests,
            ),
        ),
        scale=ScaleSpec(tier="quick", seed=seed),
    )
    return SweepSpec(
        name="sensitivity",
        description=(
            "Memory-level-parallelism sensitivity: achieved bandwidth vs "
            "per-thread outstanding-miss window."
        ),
        base=base,
        axes=(
            SweepAxis(
                name="window",
                path="workloads[0].params.window",
                values=tuple(depths),
            ),
        ),
        jobs=jobs,
        output=output,
    )


@register_sweep("sensitivity")
def _registered_sensitivity_sweep(**params) -> SweepSpec:
    """Window-depth (MLP) sensitivity grid on the Corona crossbar."""
    return sensitivity_sweep_spec(**params)


#: Requests per ladder point by scale tier.  Small counts are fine here:
#: the saturation test is schedule slip (did the replay keep up with the
#: arrival schedule), which is robust at a few thousand requests, and a
#: ladder replays every point on every configuration.
SATURATION_REQUESTS = {
    "quick": 2_000,
    "default": 8_000,
    "full": 20_000,
    "paper": 60_000,
}

#: Default offered-load ladder (nominal aggregate requests/second): from
#: far below either baseline's capacity to well past the crossbar's.
SATURATION_LADDER_START = 1e9
SATURATION_LADDER_GROWTH = 2.0
SATURATION_LADDER_POINTS = 9

#: The quick tier trades ladder resolution for wall clock: five points with
#: 4x growth still bracket both stock configurations' knees.
SATURATION_QUICK_GROWTH = 4.0
SATURATION_QUICK_POINTS = 5


def latency_throughput_sweep_spec(
    rates: Optional[Sequence[float]] = None,
    configurations: Sequence[str] = ("XBar/OCM", "LMesh/ECM"),
    process: str = "poisson",
    burst_rate_rps: float = 0.0,
    burst_fraction: float = 0.0,
    scale: str = "default",
    num_requests: Optional[int] = None,
    seed: int = 1,
    jobs: int = 1,
    output: OutputSpec = OutputSpec(),
) -> SweepSpec:
    """The open-loop latency-throughput saturation study as a grid.

    Replays a Uniform workload under an open-loop arrival process
    (``poisson`` by default; ``mmpp`` with the burst parameters) at a
    geometric ladder of offered loads on each configuration.  The rate axis
    rewrites ``workloads[0].arrival.rate_rps``, so every ladder point
    regenerates its arrival schedule deterministically; the engine's report
    appends the knee table (:mod:`repro.sweeps.saturation`) and the
    long-form CSV carries ``offered_rps``/``achieved_rps``/``saturated``
    and the sojourn percentiles per point.

    ``scale`` picks the per-point request count (:data:`SATURATION_REQUESTS`)
    and, for ``"quick"``, a coarser default ladder; explicit ``rates`` or
    ``num_requests`` override either.
    """
    if scale not in SATURATION_REQUESTS:
        raise ValueError(
            f"unknown scale {scale!r}; known: {sorted(SATURATION_REQUESTS)}"
        )
    if rates is None:
        if scale == "quick":
            growth, points = SATURATION_QUICK_GROWTH, SATURATION_QUICK_POINTS
        else:
            growth, points = SATURATION_LADDER_GROWTH, SATURATION_LADDER_POINTS
        rates = tuple(
            SATURATION_LADDER_START * growth**index for index in range(points)
        )
    rates = tuple(float(rate) for rate in rates)
    requests = (
        num_requests if num_requests is not None else SATURATION_REQUESTS[scale]
    )
    base = Scenario(
        name="latency-throughput-base",
        description="one (offered load, configuration) point of the ladder",
        system=SystemSpec(configurations=(configurations[0],)),
        workloads=(
            WorkloadSpec(
                name="Uniform",
                arrival=ArrivalSpec(
                    process=process,
                    rate_rps=rates[0],
                    burst_rate_rps=burst_rate_rps,
                    burst_fraction=burst_fraction,
                ),
                num_requests=requests,
            ),
        ),
        scale=ScaleSpec(tier="quick", seed=seed),
    )
    return SweepSpec(
        name="latency-throughput",
        description=(
            "Open-loop saturation study: offered load swept geometrically "
            "past the knee; sojourn percentiles and achieved throughput "
            "per point, knee table in the report."
        ),
        base=base,
        axes=(
            SweepAxis(
                name="rate_rps",
                path="workloads[0].arrival.rate_rps",
                values=rates,
            ),
            SweepAxis(
                name="configuration",
                path="system.configurations",
                values=tuple([name] for name in configurations),
            ),
        ),
        jobs=jobs,
        output=output,
    )


@register_sweep("latency-throughput")
def _registered_latency_throughput_sweep(**params) -> SweepSpec:
    """Open-loop offered-load ladder with knee detection per configuration."""
    return latency_throughput_sweep_spec(**params)
