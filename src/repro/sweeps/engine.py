"""The sweep execution engine: expand, replay, checkpoint, resume.

:func:`run_sweep` drives an expanded grid through the *existing* pair
runners (:func:`repro.harness.parallel.run_pairs`, the machinery behind the
evaluation matrix and the coherence sweep), so a sweep is bit-identical
between ``--jobs 1`` and ``--jobs N`` for free.  Three things make it a
study engine rather than a loop:

* **Trace reuse** -- packed traces are generated once per *distinct
  workload signature* (the workload spec's canonical dict + seed + request
  count) in a :class:`TraceCache`, not once per point, so a grid that only
  varies configuration overrides generates each trace exactly once.  The
  cache counts generations and takes an ``on_generate`` hook, which is how
  tests assert the reuse.
* **Checkpointed resume** -- with a ``directory``, the engine writes a
  ``manifest.json`` (the spec, its hash, the full point-id list) once and
  appends one ``points.jsonl`` line per *completed* point the moment its
  last pair lands.  Re-invoking the same sweep on the same directory skips
  every recorded point and replays only the remainder; a directory holding
  a different spec is refused.
* **Structured sinks** -- every (point, result) pair becomes a long-form
  record (point id + axis values + every stored
  :class:`~repro.core.results.WorkloadResult` field) written to the spec's
  JSON/CSV sinks, plus a markdown summary table, merging resumed and fresh
  points in expansion order.
"""

from __future__ import annotations

import csv
import hashlib
import json
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.api.run import ScenarioMatrix
from repro.core.results import (
    WorkloadResult,
    long_form_columns,
    long_form_row,
)
from repro.harness.resilience import (
    DEFAULT_POLICY,
    FAILURE_CSV_COLUMNS,
    PairFailure,
    PairFailureError,
    RetryPolicy,
)
from repro.obs.artifacts import resolve_pair_spec
from repro.obs.log import get_logger
from repro.obs.progress import ProgressReporter
from repro.obs.spec import ObservabilitySpec
from repro.sweeps.spec import SweepError, SweepPoint, SweepSpec, expand
from repro.trace.packed import PackedTrace, generate_packed_trace

_log = get_logger(__name__)

#: Format tags of the on-disk artefacts.
MANIFEST_FORMAT = "corona-sweep-manifest/1"
RESULTS_FORMAT = "corona-sweep-results/1"

MANIFEST_NAME = "manifest.json"
POINTS_NAME = "points.jsonl"


class TraceCache:
    """Packed traces keyed by workload signature, generated at most once.

    The signature is conservative: any difference in the workload spec's
    canonical dict (params, sharing, name), the seed or the request count
    yields a new entry, so reuse is always sound.  ``generations`` counts
    actual generator invocations and ``on_generate`` (if set) fires on each
    -- the observability hook the perf tests assert against.
    """

    def __init__(
        self,
        on_generate: Optional[Callable[[str, PackedTrace], None]] = None,
    ) -> None:
        self.on_generate = on_generate
        self.generations = 0
        self._traces: Dict[str, PackedTrace] = {}

    def __len__(self) -> int:
        return len(self._traces)

    def get(
        self, signature: str, workload, seed: int, num_requests: int
    ) -> PackedTrace:
        """The packed trace for ``signature``, generating on first use."""
        packed = self._traces.get(signature)
        if packed is None:
            packed = generate_packed_trace(
                workload, seed=seed, num_requests=num_requests
            )
            self.generations += 1
            self._traces[signature] = packed
            if self.on_generate is not None:
                self.on_generate(signature, packed)
        return packed


def workload_signature(
    workload_spec_dict: Mapping, seed: int, num_requests: int
) -> str:
    """The trace-cache key: canonical JSON of (spec, seed, requests)."""
    return json.dumps(
        {
            "workload": workload_spec_dict,
            "seed": seed,
            "num_requests": num_requests,
        },
        sort_keys=True,
        default=repr,
    )


def spec_digest(spec: SweepSpec) -> str:
    """SHA-256 over the spec's *result-affecting* fields (base + axes).

    The resume-compatibility tag: editing operational or display fields --
    the sweep's ``name``/``description``/``jobs``/``output``, the base's
    likewise -- between runs must not refuse a resume (a killed-at-``jobs:
    1`` sweep may legitimately finish at ``jobs: 8``; results are
    bit-identical across job counts), while any change to the grid itself
    invalidates the checkpoints.
    """
    payload = spec.to_dict()
    base = {
        key: value
        for key, value in payload["base"].items()
        if key
        not in (
            "name",
            "description",
            "jobs",
            "output",
            "experiments",
            # Telemetry changes what a run *records*, never what it computes,
            # so toggling it must not invalidate checkpointed points.
            "observability",
        )
    }
    canonical = json.dumps(
        {"base": base, "axes": payload["axes"]}, sort_keys=True
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SweepRecord:
    """One long-form result row: a point's coordinates plus one replay."""

    point_id: str
    axis_values: Mapping[str, object]
    result: WorkloadResult

    def to_dict(self) -> Dict[str, object]:
        return {
            "point_id": self.point_id,
            "axis_values": dict(self.axis_values),
            "result": self.result.to_dict(),
        }


@dataclass
class SweepRunResult:
    """Everything one sweep run produced (or resumed).

    ``failures`` maps each failed point id to its structured
    :class:`~repro.harness.resilience.PairFailure` records (pairs that
    exhausted the retry policy); such points carry no records and re-run on
    the next resume.  ``retried_pairs`` counts pair attempts beyond the
    first across the whole run (successful retries included).
    """

    spec: SweepSpec
    points: List[SweepPoint]
    records: List[SweepRecord]
    executed_point_ids: List[str] = field(default_factory=list)
    skipped_point_ids: List[str] = field(default_factory=list)
    written: Dict[str, Path] = field(default_factory=dict)
    wall_clock_seconds: float = 0.0
    directory: Optional[Path] = None
    failures: Dict[str, List[PairFailure]] = field(default_factory=dict)
    retried_pairs: int = 0

    @property
    def failed_point_ids(self) -> List[str]:
        return list(self.failures)


# ---------------------------------------------------------------------------
# Manifest
# ---------------------------------------------------------------------------

def _manifest_payload(spec: SweepSpec, points: Sequence[SweepPoint]) -> Dict:
    return {
        "format": MANIFEST_FORMAT,
        "name": spec.name,
        "spec_sha256": spec_digest(spec),
        "point_ids": [point.point_id for point in points],
        # Point-level alignment metadata: the diff engine aligns two sweep
        # directories by (point_id, configuration, workload) and labels the
        # axis coordinates without re-expanding the spec.
        "points": [
            {
                "point_id": point.point_id,
                "axis_values": dict(point.axis_values),
            }
            for point in points
        ],
        "sweep": spec.to_dict(),
    }


def _read_manifest(directory: Path) -> Optional[Dict]:
    path = directory / MANIFEST_NAME
    if not path.exists():
        return None
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SweepError(str(path), f"unreadable sweep manifest: {exc}") from None
    if manifest.get("format") != MANIFEST_FORMAT:
        raise SweepError(
            str(path),
            f"not a sweep manifest (format {manifest.get('format')!r}; "
            f"this build reads {MANIFEST_FORMAT!r})",
        )
    return manifest


def _load_completed(
    directory: Path,
) -> Tuple[
    Dict[str, List[WorkloadResult]],
    Dict[str, List[Dict]],
    Dict[str, int],
    Dict[str, float],
    int,
]:
    """Points recorded by earlier (possibly killed) runs.

    Returns ``(completed, failed, retried, seconds, good_offset)``: the
    parsed completed points, the failed points' raw failure dicts (entries
    with ``"status": "failed"``; their points re-run on resume), the
    per-point retried-pair counts, the per-point replay seconds (entries
    that recorded them), and the byte offset just past the last *intact*
    line -- the caller truncates the file there before appending, so a line
    half-written by a kill can never merge with the resumed run's first
    record (which would otherwise poison every future resume).  A point
    appearing more than once (a failed run later resumed to success, or
    vice versa) resolves to its *latest* entry, so nothing double-counts.
    """
    path = directory / POINTS_NAME
    completed: Dict[str, List[WorkloadResult]] = {}
    failed: Dict[str, List[Dict]] = {}
    retried: Dict[str, int] = {}
    seconds: Dict[str, float] = {}
    good_offset = 0
    if not path.exists():
        return completed, failed, retried, seconds, good_offset
    with path.open("rb") as handle:
        for raw in handle:
            if not raw.endswith(b"\n"):
                break  # half-written final line (killed mid-write)
            line = raw.decode("utf-8", errors="replace").strip()
            if line:
                try:
                    entry = json.loads(line)
                    point_id = entry["point_id"]
                    if entry.get("status") == "failed":
                        failures = [dict(f) for f in entry.get("failures", [])]
                        failed[point_id] = failures
                        completed.pop(point_id, None)
                    else:
                        results = [
                            WorkloadResult.from_dict(result)
                            for result in entry["results"]
                        ]
                        completed[point_id] = results
                        failed.pop(point_id, None)
                    retried[point_id] = int(entry.get("retried_pairs", 0))
                    if entry.get("seconds") is not None:
                        seconds[point_id] = float(entry["seconds"])
                except (ValueError, KeyError, TypeError):
                    # Corrupt line: nothing after it can be trusted either,
                    # so stop merging there; the affected points re-run.
                    break
            good_offset += len(raw)
    return completed, failed, retried, seconds, good_offset


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

def _point_pairs(
    point: SweepPoint,
    cache: TraceCache,
    observability: Optional[ObservabilitySpec] = None,
) -> List[tuple]:
    """The ``run_pairs`` argument tuples of one point, in the serial
    runner's order (workloads outer, configurations inner).

    ``observability`` overrides the point scenario's own spec (the CLI's
    ``--metrics-out``/``--timeline-out`` flags); per-pair sink paths are
    resolved here, prefixed with the point id so a grid's artifacts never
    collide."""
    point.scenario.import_modules()
    matrix = ScenarioMatrix(point.scenario)
    obs_spec = (
        observability if observability is not None else matrix.observability
    )
    pairs: List[tuple] = []
    for workload in matrix.workloads():
        spec = matrix.workload_spec(workload.name)
        requests = matrix.requests_for(workload)
        spec_dict = (
            spec.to_dict() if spec is not None else {"name": workload.name}
        )
        # Params the workload declares replay-only (e.g. the outstanding-
        # miss window) do not shape the trace, so a grid sweeping them
        # still generates one trace.  Opt-in per workload class; unknown
        # workloads keep the conservative full-params signature.
        replay_only = getattr(workload, "replay_only_params", ())
        if replay_only and spec_dict.get("params"):
            spec_dict = {
                **spec_dict,
                "params": {
                    key: value
                    for key, value in spec_dict["params"].items()
                    if key not in replay_only
                },
            }
        signature = workload_signature(
            spec_dict, matrix.scale.seed, requests
        )
        trace = cache.get(signature, workload, matrix.scale.seed, requests)
        window = getattr(workload, "window", 4)
        for name in matrix.configuration_names:
            pairs.append(
                (
                    name,
                    trace,
                    window,
                    matrix.coherence,
                    matrix.corona_config,
                    tuple(point.scenario.modules),
                    matrix.faults,
                    resolve_pair_spec(
                        obs_spec,
                        name,
                        workload.name,
                        True,
                        prefix=point.point_id,
                    ),
                )
            )
    return pairs


def _default_output(spec: SweepSpec, directory: Optional[Path]):
    """The effective sinks: explicit spec paths win; a directory fills the
    rest in with standard names so every directory-backed sweep leaves a
    complete artefact set."""
    output = spec.output
    if directory is None:
        return output
    from repro.api.scenario import OutputSpec

    return OutputSpec(
        report=output.report or str(directory / "report.md"),
        json=output.json or str(directory / "results.json"),
        csv=output.csv or str(directory / "results.csv"),
    )


def _axis_names(spec: SweepSpec) -> List[str]:
    return [axis.name for axis in spec.axes]


def _sweep_report(spec: SweepSpec, records: Sequence[SweepRecord]) -> str:
    """The markdown summary: one long-form row per record."""
    axis_names = _axis_names(spec)
    lines = [f"# Sweep `{spec.name}`", ""]
    if spec.description:
        lines.extend([spec.description, ""])
    lines.append(
        f"{len(records)} records across {len({r.point_id for r in records})} "
        f"points; axes: {', '.join(axis_names) if axis_names else '(none)'}."
    )
    lines.append("")
    header = (
        ["point"]
        + axis_names
        + ["workload", "configuration", "exec us", "bw TB/s", "lat ns",
           "power W"]
    )
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|---" * len(header) + "|")
    for record in records:
        cells = [record.point_id]
        for name in axis_names:
            value = record.axis_values.get(name)
            cells.append(
                f"{value:g}" if isinstance(value, float) else str(value)
            )
        result = record.result
        cells.extend(
            [
                result.workload,
                result.configuration,
                f"{result.execution_time_s * 1e6:.2f}",
                f"{result.achieved_bandwidth_tbps:.3f}",
                f"{result.average_latency_ns:.1f}",
                f"{result.network_power_w:.2f}",
            ]
        )
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    # Per-axis geomeans and configuration crossovers, then -- for open-loop
    # sweeps (any record carrying an offered load) -- the knee table.
    from repro.sweeps.aggregate import aggregation_report_section
    from repro.sweeps.saturation import saturation_report_section

    lines.extend(aggregation_report_section(records, axis_names))
    lines.extend(saturation_report_section(records))
    return "\n".join(lines)


def _write_sinks(
    spec: SweepSpec,
    records: Sequence[SweepRecord],
    output,
    written: Dict[str, Path],
    failures: Optional[Dict[str, List[PairFailure]]] = None,
    directory: Optional[Path] = None,
) -> None:
    from repro.api.run import _write_path as prepare

    axis_names = _axis_names(spec)
    if output.report:
        path = prepare(output.report)
        path.write_text(_sweep_report(spec, records), encoding="utf-8")
        written["report"] = path
    if output.json:
        path = prepare(output.json)
        payload = {
            "format": RESULTS_FORMAT,
            "sweep": spec.to_dict(),
            "records": [record.to_dict() for record in records],
        }
        if failures:
            payload["failures"] = {
                point_id: [f.to_dict() for f in fs]
                for point_id, fs in failures.items()
            }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        written["json"] = path
    if output.csv:
        path = prepare(output.csv)
        with path.open("w", encoding="utf-8", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(long_form_columns(axis_names))
            for record in records:
                axis_cells = [
                    value
                    if isinstance(value, (int, float, str, bool))
                    or value is None
                    else json.dumps(value)
                    for value in (
                        record.axis_values.get(name) for name in axis_names
                    )
                ]
                writer.writerow(
                    long_form_row(record.point_id, axis_cells, record.result)
                )
        written["csv"] = path
    if failures:
        # Structured failure sink: one row per broken pair, next to the
        # long-form CSV (or in the sweep directory).
        target = None
        if directory is not None:
            target = directory / "failures.csv"
        elif output.csv:
            target = Path(output.csv).with_suffix(".failures.csv")
        if target is not None:
            path = prepare(str(target))
            with path.open("w", encoding="utf-8", newline="") as handle:
                writer = csv.writer(handle)
                writer.writerow(("point_id",) + FAILURE_CSV_COLUMNS)
                for point_id, fs in failures.items():
                    for f in fs:
                        record = f.to_dict()
                        writer.writerow(
                            [point_id]
                            + [record[col] for col in FAILURE_CSV_COLUMNS]
                        )
            written["failures"] = path


def run_sweep(
    spec: SweepSpec,
    directory: Optional[Union[str, Path]] = None,
    jobs: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    on_point: Optional[
        Callable[[SweepPoint, Tuple[WorkloadResult, ...]], None]
    ] = None,
    trace_cache: Optional[TraceCache] = None,
    resume: bool = True,
    policy: Optional[RetryPolicy] = None,
    observability: Optional[ObservabilitySpec] = None,
) -> SweepRunResult:
    """Execute (or resume) a sweep and return its long-form records.

    ``directory`` enables the on-disk manifest and resume; without it the
    run is ephemeral (the experiment-embedded path).  ``jobs`` overrides the
    spec's worker count (``1`` = serial in process, ``0`` = every CPU);
    results are bit-identical across job counts.  ``on_point`` fires after
    each point's results are checkpointed -- the streaming hook, and the
    seam tests use to interrupt a run between points.  ``resume=False``
    discards any previous checkpoints in ``directory`` instead of skipping
    their points.

    ``policy`` is the resilience contract
    (:class:`~repro.harness.resilience.RetryPolicy`): per-pair timeouts,
    worker-crash recovery and bounded retries always apply (the default
    policy recovers crashes); points whose pairs stay broken are
    checkpointed as *failed* entries (and re-run on the next resume) either
    way, then a strict policy (``allow_failures=False``, the default)
    raises :class:`~repro.harness.resilience.PairFailureError` once the
    rest of the grid -- completed points checkpointed and sinks written --
    has landed, while ``allow_failures=True`` returns the partial
    :class:`SweepRunResult` with :attr:`SweepRunResult.failures` filled in.

    ``observability`` overrides every point's telemetry spec (the CLI's
    ``--progress``/``--metrics-out``/``--timeline-out`` path); ``None``
    keeps each point's own ``base.observability``.  Telemetry never enters
    the spec digest, so toggling it resumes the same directory.
    """
    from repro.harness.parallel import run_pairs

    started = time.perf_counter()
    points = expand(spec)
    if not points:
        raise SweepError("axes", "the sweep expands to zero points")
    effective_policy = policy if policy is not None else DEFAULT_POLICY
    directory = Path(directory) if directory is not None else None
    completed: Dict[str, List[WorkloadResult]] = {}
    prior_seconds: Dict[str, float] = {}
    manifest_path = None
    if directory is not None:
        directory.mkdir(parents=True, exist_ok=True)
        manifest = _read_manifest(directory)
        digest = spec_digest(spec)
        if manifest is not None and resume:
            if manifest.get("spec_sha256") != digest:
                raise SweepError(
                    str(directory / MANIFEST_NAME),
                    f"directory holds a different sweep "
                    f"({manifest.get('name')!r}); resume needs the original "
                    f"spec -- use a fresh directory or pass --fresh to "
                    f"discard the previous run",
                )
            completed, _prior_failed, _prior_retried, prior_seconds, good_offset = (
                _load_completed(directory)
            )
            points_path = directory / POINTS_NAME
            if (
                points_path.exists()
                and points_path.stat().st_size > good_offset
            ):
                # Drop a half-written trailing line so the resumed run's
                # first checkpoint starts on a fresh line.
                with points_path.open("rb+") as handle:
                    handle.truncate(good_offset)
        else:
            (directory / POINTS_NAME).write_text("", encoding="utf-8")
        (directory / MANIFEST_NAME).write_text(
            json.dumps(_manifest_payload(spec, points), indent=2) + "\n",
            encoding="utf-8",
        )
        manifest_path = directory / MANIFEST_NAME
    known_ids = {point.point_id for point in points}
    completed = {
        point_id: results
        for point_id, results in completed.items()
        if point_id in known_ids
    }
    pending = [point for point in points if point.point_id not in completed]
    skipped = [point.point_id for point in points if point.point_id in completed]
    point_seconds: Dict[str, float] = {
        point_id: seconds
        for point_id, seconds in prior_seconds.items()
        if point_id in completed
    }
    if skipped:
        _log.info(
            "resuming sweep: %d of %d points already checkpointed",
            len(skipped), len(points),
        )

    cache = trace_cache if trace_cache is not None else TraceCache()
    pairs: List[tuple] = []
    spans: List[Tuple[SweepPoint, int, int]] = []
    for point in pending:
        point_pairs = _point_pairs(point, cache, observability)
        spans.append((point, len(pairs), len(pairs) + len(point_pairs)))
        pairs.extend(point_pairs)

    fresh: Dict[str, List[WorkloadResult]] = {}
    point_failures: Dict[str, List[PairFailure]] = {}
    retried_total = 0
    effective_jobs = spec.jobs if jobs is None else jobs
    if pairs:
        base_obs = (
            observability if observability is not None
            else spec.base.observability
        )
        heartbeat = None
        if base_obs is not None and base_obs.progress:
            heartbeat = ProgressReporter(
                len(pairs),
                interval_s=base_obs.progress_interval_s,
                label="sweep",
            )
        points_handle = (
            (directory / POINTS_NAME).open("a", encoding="utf-8")
            if directory is not None
            else None
        )
        span_index = 0
        buffer: List[Optional[WorkloadResult]] = []
        buffer_failures: List[PairFailure] = []
        buffer_retries = 0
        buffer_seconds = 0.0

        def checkpoint(entry: Dict) -> None:
            if points_handle is not None:
                points_handle.write(json.dumps(entry, default=repr) + "\n")
                points_handle.flush()

        def collect(
            position: int,
            result: Optional[WorkloadResult],
            failure: Optional[PairFailure],
            attempts: int,
            seconds: float,
        ) -> None:
            nonlocal span_index, buffer_retries, retried_total, buffer_seconds
            buffer.append(result)
            buffer_retries += attempts - 1
            retried_total += attempts - 1
            buffer_seconds += seconds
            if failure is not None:
                buffer_failures.append(failure)
            if heartbeat is not None:
                heartbeat.pair_done(
                    failed=failure is not None, retries=attempts - 1
                )
            point, start, stop = spans[span_index]
            if len(buffer) < stop - start:
                return
            results = [r for r in buffer if r is not None]
            failures = list(buffer_failures)
            retried = buffer_retries
            replay_seconds = buffer_seconds
            buffer.clear()
            buffer_failures.clear()
            buffer_retries = 0
            buffer_seconds = 0.0
            span_index += 1
            point_seconds[point.point_id] = replay_seconds
            if failures:
                # Failed point: checkpointed as such (status drives `sweep
                # status` and the failure sinks) and *not* recorded as
                # completed, so the next resume re-runs exactly this point.
                point_failures[point.point_id] = failures
                entry = {
                    "point_id": point.point_id,
                    "axis_values": dict(point.axis_values),
                    "status": "failed",
                    "failures": [f.to_dict() for f in failures],
                    "seconds": replay_seconds,
                }
                if retried:
                    entry["retried_pairs"] = retried
                checkpoint(entry)
                return
            fresh[point.point_id] = results
            entry = {
                "point_id": point.point_id,
                "axis_values": dict(point.axis_values),
                "results": [r.to_dict() for r in results],
                "seconds": replay_seconds,
            }
            if retried:
                entry["retried_pairs"] = retried
            checkpoint(entry)
            if on_point is not None:
                on_point(point, tuple(results))

        try:
            # Failures are always collected per point first (so completed
            # points checkpoint no matter what); strictness is applied after
            # the grid finishes, below.
            run_pairs(
                pairs, jobs=effective_jobs, progress=progress,
                policy=replace(effective_policy, allow_failures=True),
                on_outcome=collect,
            )
        finally:
            if points_handle is not None:
                points_handle.close()
            if heartbeat is not None:
                heartbeat.finish()

    by_id = {**completed, **fresh}
    records = [
        SweepRecord(
            point_id=point.point_id,
            axis_values=point.axis_values,
            result=result,
        )
        for point in points
        for result in by_id.get(point.point_id, [])
    ]
    outcome = SweepRunResult(
        spec=spec,
        points=points,
        records=records,
        executed_point_ids=[point.point_id for point in pending],
        skipped_point_ids=skipped,
        wall_clock_seconds=time.perf_counter() - started,
        directory=directory,
        failures=point_failures,
        retried_pairs=retried_total,
    )
    if manifest_path is not None:
        outcome.written["manifest"] = manifest_path
        # Rewrite the manifest with the run's outcome, so the directory is
        # self-describing without parsing the checkpoint log.
        payload = _manifest_payload(spec, points)
        if point_failures:
            payload["failed_point_ids"] = list(point_failures)
        if point_seconds:
            payload["timings"] = {
                "points": dict(point_seconds),
                "wall_clock_seconds": outcome.wall_clock_seconds,
            }
        manifest_path.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
    _write_sinks(
        spec, records, _default_output(spec, directory), outcome.written,
        failures=point_failures, directory=directory,
    )
    if point_failures and not effective_policy.allow_failures:
        raise PairFailureError(
            [f for failures in point_failures.values() for f in failures]
        )
    return outcome


# ---------------------------------------------------------------------------
# Status
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepStatus:
    """What a sweep directory's manifest says about its progress.

    ``failed_ids`` are points whose latest checkpoint entry is a failure
    record (they re-run on resume, so they also count as pending);
    ``retried_pairs`` / ``quarantined_pairs`` aggregate the resilience
    counters over every point's latest entry.
    """

    name: str
    directory: Path
    point_ids: Tuple[str, ...]
    completed_ids: Tuple[str, ...]
    failed_ids: Tuple[str, ...] = ()
    retried_pairs: int = 0
    quarantined_pairs: int = 0
    #: Replay seconds per checkpointed point (entries that recorded them;
    #: the ``sweep status --timings`` view).
    point_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return len(self.point_ids)

    @property
    def pending_ids(self) -> Tuple[str, ...]:
        done = set(self.completed_ids)
        return tuple(pid for pid in self.point_ids if pid not in done)

    @property
    def complete(self) -> bool:
        return not self.pending_ids


def sweep_status(directory: Union[str, Path]) -> SweepStatus:
    """Read a sweep directory's progress without running anything."""
    directory = Path(directory)
    manifest = _read_manifest(directory)
    if manifest is None:
        raise SweepError(
            str(directory),
            f"no {MANIFEST_NAME} here; is this a sweep --directory?",
        )
    point_ids = tuple(manifest.get("point_ids", []))
    known = set(point_ids)
    completed_points, failed_points, retried, seconds, _good_offset = (
        _load_completed(directory)
    )
    completed = tuple(pid for pid in completed_points if pid in known)
    failed = tuple(pid for pid in failed_points if pid in known)
    quarantined = sum(
        1
        for pid in failed
        for record in failed_points[pid]
        if record.get("quarantined", True)
    )
    return SweepStatus(
        name=str(manifest.get("name", "sweep")),
        directory=directory,
        point_ids=point_ids,
        completed_ids=completed,
        failed_ids=failed,
        retried_pairs=sum(
            count for pid, count in retried.items() if pid in known
        ),
        quarantined_pairs=quarantined,
        point_seconds={
            pid: value for pid, value in seconds.items() if pid in known
        },
    )
