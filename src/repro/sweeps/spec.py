"""The declarative sweep specification: one spec, many scenarios.

A :class:`SweepSpec` is a frozen, JSON-round-tripping description of a
parameter-grid study over the Scenario API: a *base* scenario plus named
*axes*, each of which writes a list of values into one field path of the
base -- ``system.overrides.num_clusters``, ``workloads[0].params.window``,
``workloads[*].sharing.fraction``, ``scale.seed``, ``coherence.
broadcast_threshold``, ``system.configurations``...  Axes combine as a
cartesian product by default; an axis carrying ``zip`` advances in lockstep
with the named axis instead (the two must be equally long), which is how a
varying parameter and its human-readable label travel together.

:func:`expand` turns a spec into an explicit list of
:class:`SweepPoint`\\ s -- ``(point_id, axis_values, scenario)`` -- with
deterministic, filesystem-safe point ids (an expansion-order index plus an
``axis=value`` slug), the unit the execution engine schedules, checkpoints
and resumes.

Every parse, path or combination error raises :class:`SweepError` whose
message starts with the offending field path (``axes[2].values: ...``),
exactly like :class:`~repro.api.scenario.ScenarioError` does for scenarios.
"""

from __future__ import annotations

import copy
import itertools
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.api.scenario import (
    OutputSpec,
    Scenario,
    ScenarioError,
    _expect_int,
    _expect_list,
    _expect_mapping,
    _expect_str,
    _reject_unknown,
)

#: Format tag written into sweep spec files.
SWEEP_FORMAT = "corona-sweep/1"


class SweepError(ScenarioError):
    """A sweep spec failed to parse, validate or expand.

    ``field`` holds the dotted path of the offending field (e.g.
    ``axes[1].values``); the message always starts with it.  Subclasses
    :class:`~repro.api.scenario.ScenarioError` so callers (the CLI) handle
    scenario-level and sweep-level failures uniformly.
    """


# ---------------------------------------------------------------------------
# Field paths -- the machinery lives in repro.api.fields (it is the public
# Scenario.with_field / set_field implementation); these wrappers bind the
# sweep-level error class so every path failure raises SweepError.
# ---------------------------------------------------------------------------

from repro.api.fields import PathToken  # noqa: E402,F401  (re-exported)
from repro.api.fields import apply_value as _apply_value_any  # noqa: E402
from repro.api.fields import concrete_paths as _concrete_paths_any  # noqa: E402
from repro.api.fields import parse_path as _parse_path_any  # noqa: E402
from repro.api.fields import render_tokens as _render_tokens  # noqa: E402


def parse_path(path: str, where: str) -> Tuple[PathToken, ...]:
    """Parse a dotted field path into tokens, naming ``where`` on errors."""
    return _parse_path_any(path, where, SweepError)


def _concrete_paths(
    data: Mapping, tokens: Sequence[PathToken], path: str, where: str
) -> List[Tuple[PathToken, ...]]:
    return _concrete_paths_any(data, tokens, path, where, SweepError)


def _apply_value(
    data: Dict, tokens: Sequence[PathToken], value: object, path: str, where: str
) -> None:
    _apply_value_any(data, tokens, value, path, where, SweepError)


# ---------------------------------------------------------------------------
# Spec nodes
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepAxis:
    """One named axis of the grid.

    ``path`` is the scenario field the axis writes (dotted, with ``[i]``
    list indices and ``[*]`` for every entry); ``values`` are the JSON-clean
    values swept over it.  ``zip_with`` names an *earlier* axis to advance
    in lockstep with instead of crossing cartesianly.
    """

    name: str
    path: str
    values: Tuple[object, ...] = ()
    zip_with: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "path": self.path,
            "values": list(self.values),
            "zip": self.zip_with,
        }

    @classmethod
    def from_dict(cls, data, path: str) -> "SweepAxis":
        data = _expect_mapping(data, path)
        _reject_unknown(data, ("name", "path", "values", "zip"), path)
        if "name" not in data:
            raise SweepError(f"{path}.name", "axis name is required")
        if "path" not in data:
            raise SweepError(f"{path}.path", "axis path is required")
        name = _expect_str(data["name"], f"{path}.name")
        target = _expect_str(data["path"], f"{path}.path")
        values = tuple(_expect_list(data.get("values", []), f"{path}.values"))
        zip_with = data.get("zip")
        if zip_with is not None:
            zip_with = _expect_str(zip_with, f"{path}.zip")
        return cls(name=name, path=target, values=values, zip_with=zip_with)


_SWEEP_FIELDS = (
    "format",
    "name",
    "description",
    "base",
    "axes",
    "jobs",
    "output",
)


@dataclass(frozen=True)
class SweepSpec:
    """A complete, serializable parameter-grid study.

    ``base`` is a full :class:`~repro.api.scenario.Scenario` *except* that
    its ``experiments``, ``output`` and ``jobs`` fields must stay at their
    defaults -- per-point experiment sections make no sense and the sweep
    carries its own ``output`` sinks and ``jobs`` count.  The axes write
    into the base's dict form, so anything a scenario file can say, an axis
    can sweep.
    """

    name: str = "sweep"
    description: str = ""
    base: Scenario = field(default_factory=Scenario)
    axes: Tuple[SweepAxis, ...] = ()
    jobs: int = 1
    output: OutputSpec = field(default_factory=OutputSpec)

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """The spec as a JSON-clean mapping (exact round-trip)."""
        return {
            "format": SWEEP_FORMAT,
            "name": self.name,
            "description": self.description,
            "base": self.base.to_dict(),
            "axes": [axis.to_dict() for axis in self.axes],
            "jobs": self.jobs,
            "output": self.output.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SweepSpec":
        """Parse a sweep spec, raising :class:`SweepError` /
        :class:`ScenarioError` naming any bad field."""
        data = _expect_mapping(data, "sweep")
        _reject_unknown(data, _SWEEP_FIELDS, "")
        fmt = data.get("format", SWEEP_FORMAT)
        if fmt != SWEEP_FORMAT:
            raise SweepError(
                "format",
                f"unsupported sweep format {fmt!r}; this build reads "
                f"{SWEEP_FORMAT!r}",
            )
        base = Scenario.from_dict(_expect_mapping(data.get("base", {}), "base"))
        axes = tuple(
            SweepAxis.from_dict(entry, f"axes[{index}]")
            for index, entry in enumerate(
                _expect_list(data.get("axes", []), "axes")
            )
        )
        jobs = _expect_int(data.get("jobs", 1), "jobs")
        if jobs < 0:
            raise SweepError("jobs", "must be >= 0 (0 = every CPU)")
        spec = cls(
            name=_expect_str(data.get("name", "sweep"), "name"),
            description=_expect_str(data.get("description", ""), "description"),
            base=base,
            axes=axes,
            jobs=jobs,
            output=OutputSpec.from_dict(data.get("output", {})),
        )
        spec.check()
        return spec

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.to_json(), encoding="utf-8")
        return path

    # -- validation ----------------------------------------------------------
    def check(self) -> None:
        """Validate the axes against the base: names unique, values present,
        zip targets known, paths parse and resolve, no two axes writing the
        same (or a nested) field.  Raises :class:`SweepError` naming the
        offending field path."""
        if self.base.experiments:
            raise SweepError(
                "base.experiments",
                "sweep points replay the evaluation matrix only; run "
                "experiments on the collected records instead",
            )
        if self.base.output != OutputSpec():
            raise SweepError(
                "base.output",
                "per-point sinks are not written; set the sweep-level "
                "\"output\" block instead",
            )
        if self.base.jobs != 1:
            raise SweepError(
                "base.jobs",
                "per-point worker counts are ignored; set the sweep-level "
                "\"jobs\" field instead",
            )
        base_dict = self.base.to_dict()
        seen_names: Dict[str, int] = {}
        claimed: Dict[str, Tuple[int, str]] = {}
        for index, axis in enumerate(self.axes):
            where = f"axes[{index}]"
            if not axis.name:
                raise SweepError(f"{where}.name", "axis name must be non-empty")
            if axis.name in seen_names:
                raise SweepError(
                    f"{where}.name",
                    f"duplicate axis name {axis.name!r} (also axes"
                    f"[{seen_names[axis.name]}])",
                )
            seen_names[axis.name] = index
            if not axis.values:
                raise SweepError(
                    f"{where}.values", "an axis needs at least one value"
                )
            if axis.zip_with is not None:
                if axis.zip_with not in seen_names or axis.zip_with == axis.name:
                    raise SweepError(
                        f"{where}.zip",
                        f"zip target {axis.zip_with!r} is not an earlier "
                        f"axis; declared so far: "
                        f"{[a.name for a in self.axes[:index]]}",
                    )
            tokens = parse_path(axis.path, f"{where}.path")
            for concrete in _concrete_paths(
                base_dict, tokens, axis.path, f"{where}.path"
            ):
                rendered = _render_tokens(concrete)
                for other_rendered, (other_index, other_name) in claimed.items():
                    if rendered == other_rendered or rendered.startswith(
                        other_rendered + "."
                    ) or rendered.startswith(
                        other_rendered + "["
                    ) or other_rendered.startswith(
                        rendered + "."
                    ) or other_rendered.startswith(rendered + "["):
                        raise SweepError(
                            f"{where}.path",
                            f"{rendered} collides with axis "
                            f"{other_name!r} (axes[{other_index}]) writing "
                            f"{other_rendered}; two axes may not override "
                            f"the same field",
                        )
                claimed[rendered] = (index, axis.name)
        self.groups()  # validate zipped axis lengths eagerly too

    # -- combination structure ----------------------------------------------
    def groups(self) -> List[List[int]]:
        """Axis indices grouped for expansion: zipped axes share a group
        (advancing in lockstep), groups cross as a cartesian product in
        declaration order (first group varies slowest).  Raises
        :class:`SweepError` on zipped length mismatches."""
        by_name = {axis.name: index for index, axis in enumerate(self.axes)}
        group_of: Dict[int, int] = {}
        groups: List[List[int]] = []
        for index, axis in enumerate(self.axes):
            if axis.zip_with is not None:
                target = group_of[by_name[axis.zip_with]]
                anchor = self.axes[groups[target][0]]
                if len(axis.values) != len(anchor.values):
                    raise SweepError(
                        f"axes[{index}].values",
                        f"axis {axis.name!r} is zipped with "
                        f"{anchor.name!r} but has {len(axis.values)} values "
                        f"where {anchor.name!r} has {len(anchor.values)}",
                    )
                groups[target].append(index)
                group_of[index] = target
            else:
                group_of[index] = len(groups)
                groups.append([index])
        return groups


@dataclass(frozen=True)
class SweepPoint:
    """One expanded grid point: a runnable scenario plus its coordinates."""

    point_id: str
    axis_values: Mapping[str, object]
    scenario: Scenario


def _slug(value: object) -> str:
    """A short filesystem-safe rendering of one axis value."""
    if isinstance(value, float):
        text = f"{value:g}"
    elif isinstance(value, (list, tuple)):
        text = "+".join(_slug(entry) for entry in value)
    elif isinstance(value, Mapping):
        text = "+".join(f"{key}-{_slug(val)}" for key, val in value.items())
    else:
        text = str(value)
    return re.sub(r"[^A-Za-z0-9._+-]+", "-", text).strip("-") or "x"


def point_id_for(index: int, axis_values: Mapping[str, object]) -> str:
    """The deterministic id of one point: expansion index + value slug."""
    slug = "-".join(
        f"{_slug(name)}={_slug(value)}" for name, value in axis_values.items()
    )
    if len(slug) > 96:
        slug = slug[:96].rstrip("-")
    return f"{index:03d}-{slug}" if slug else f"{index:03d}"


def expand(spec: SweepSpec) -> List[SweepPoint]:
    """Expand a sweep spec into its explicit grid points.

    Point order is deterministic: the cartesian product of the axis groups
    in declaration order, first group outermost.  Each point's scenario is
    the base's dict form with every axis value applied at its path, re-read
    through :class:`Scenario.from_dict` -- so a value that would be illegal
    in a scenario file is illegal here too, with the same field-path error.
    """
    spec.check()
    groups = spec.groups()
    base_dict = spec.base.to_dict()
    tokens_per_axis = [
        parse_path(axis.path, f"axes[{index}].path")
        for index, axis in enumerate(spec.axes)
    ]
    concrete_per_axis = [
        _concrete_paths(base_dict, tokens, spec.axes[index].path,
                        f"axes[{index}].path")
        for index, tokens in enumerate(tokens_per_axis)
    ]
    lengths = [len(spec.axes[group[0]].values) for group in groups]
    points: List[SweepPoint] = []
    for index, selection in enumerate(
        itertools.product(*(range(length) for length in lengths))
    ):
        axis_values: Dict[str, object] = {}
        point_dict = copy.deepcopy(base_dict)
        for group, position in zip(groups, selection):
            for axis_index in group:
                axis = spec.axes[axis_index]
                value = axis.values[position]
                axis_values[axis.name] = value
                for concrete in concrete_per_axis[axis_index]:
                    _apply_value(
                        point_dict, concrete, value, axis.path,
                        f"axes[{axis_index}].path",
                    )
        # Declaration order, not application order, for stable columns.
        axis_values = {
            axis.name: axis_values[axis.name] for axis in spec.axes
        }
        point_id = point_id_for(index, axis_values)
        try:
            scenario = Scenario.from_dict(point_dict)
        except ScenarioError as exc:
            raise SweepError(
                exc.field,
                f"(expanding point {point_id}) "
                f"{str(exc).split(': ', 1)[1] if ': ' in str(exc) else exc}",
            ) from None
        points.append(
            SweepPoint(
                point_id=point_id, axis_values=axis_values, scenario=scenario
            )
        )
    return points


def load_sweep(path: Union[str, Path]) -> SweepSpec:
    """Read a sweep spec JSON file, raising :class:`SweepError` on bad JSON
    or a bad field."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise SweepError(str(path), f"cannot read sweep file: {exc}") from None
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SweepError(str(path), f"not valid JSON: {exc}") from None
    return SweepSpec.from_dict(data)
