"""Latency-throughput saturation analysis over open-loop sweep records.

The ``latency-throughput`` stock sweep replays an open-loop workload at a
geometric ladder of offered loads; this module turns the resulting
long-form records into the classic saturation summary: for each
configuration, the *knee* -- the first ladder point where the system stops
keeping up with the arrival schedule -- plus the throughput it achieved
there and how the p99 sojourn grew past it.

Knee detection is intentionally simple and deterministic
(:func:`detect_knee`): a point is saturated when achieved throughput falls
below :data:`KNEE_DELIVERY_RATIO` of the offered load (the schedule-slip
test the simulator's ``saturated`` flag uses), or when the p99 sojourn
inflects by more than :data:`KNEE_P99_INFLECTION` over the previous
point -- the latency-explosion signature of an open-loop queue crossing
capacity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: A point is past the knee when achieved/offered drops below this.
KNEE_DELIVERY_RATIO = 0.95

#: ... or when p99 sojourn grows by more than this factor in one step.
KNEE_P99_INFLECTION = 2.0


def detect_knee(
    offered: Sequence[float],
    achieved: Sequence[float],
    p99_sojourn_ns: Sequence[float],
) -> Optional[int]:
    """Index of the first saturated point of a load ladder, or ``None``.

    The three sequences are parallel and assumed ordered by increasing
    offered load.  A point saturates when it delivers less than
    :data:`KNEE_DELIVERY_RATIO` of its offered load, or (from the second
    point on) when its p99 sojourn exceeds :data:`KNEE_P99_INFLECTION`
    times the previous point's.
    """
    if not (len(offered) == len(achieved) == len(p99_sojourn_ns)):
        raise ValueError(
            f"mismatched ladder lengths: {len(offered)} offered, "
            f"{len(achieved)} achieved, {len(p99_sojourn_ns)} p99"
        )
    for index, (load, done) in enumerate(zip(offered, achieved)):
        if load > 0.0 and done < KNEE_DELIVERY_RATIO * load:
            return index
        if index > 0 and p99_sojourn_ns[index - 1] > 0.0:
            if p99_sojourn_ns[index] > KNEE_P99_INFLECTION * p99_sojourn_ns[index - 1]:
                return index
    return None


def saturation_rows(records: Sequence) -> List[Tuple[str, str, object]]:
    """Per-(configuration, workload) knee summaries from sweep records.

    ``records`` are :class:`~repro.sweeps.engine.SweepRecord` instances (or
    anything with a ``result`` attribute); records whose result carries no
    open-loop data (``offered_rps == 0``) are ignored.  Returns one
    ``(configuration, workload, summary)`` tuple per group, where
    ``summary`` is a dict with the ladder (``offered``/``achieved``/
    ``p99``, sorted by offered load), the knee index (or ``None``) and the
    peak achieved throughput.
    """
    groups: Dict[Tuple[str, str], List] = {}
    for record in records:
        result = record.result
        if result.offered_rps <= 0.0:
            continue
        groups.setdefault((result.configuration, result.workload), []).append(
            result
        )
    rows: List[Tuple[str, str, object]] = []
    for (configuration, workload), results in sorted(groups.items()):
        results.sort(key=lambda r: r.offered_rps)
        offered = [r.offered_rps for r in results]
        achieved = [r.achieved_rps for r in results]
        p99 = [r.p99_sojourn_ns for r in results]
        knee = detect_knee(offered, achieved, p99)
        rows.append(
            (
                configuration,
                workload,
                {
                    "offered": offered,
                    "achieved": achieved,
                    "p99": p99,
                    "knee": knee,
                    "peak_achieved_rps": max(achieved),
                },
            )
        )
    return rows


def saturation_report_section(records: Sequence) -> List[str]:
    """Markdown lines of the knee table, empty when no record is open-loop.

    One row per (configuration, workload) group: the knee's offered and
    achieved loads (in Grps), the p99 sojourn just before and at the knee,
    and the peak achieved throughput of the whole ladder.  Groups that
    never saturate within the ladder report ``(not reached)``.
    """
    rows = saturation_rows(records)
    if not rows:
        return []
    lines = [
        "## Latency-throughput saturation",
        "",
        "Knee = first ladder point delivering under "
        f"{KNEE_DELIVERY_RATIO:.0%} of its offered load (or whose p99 "
        f"sojourn inflects by more than {KNEE_P99_INFLECTION:g}x).",
        "",
        "| configuration | workload | knee offered Grps | knee achieved Grps "
        "| p99 before knee ns | p99 at knee ns | peak achieved Grps |",
        "|---|---|---|---|---|---|---|",
    ]
    for configuration, workload, summary in rows:
        knee = summary["knee"]
        peak = f"{summary['peak_achieved_rps'] / 1e9:.2f}"
        if knee is None:
            cells = [
                configuration, workload, "(not reached)", "-", "-", "-", peak,
            ]
        else:
            before = (
                f"{summary['p99'][knee - 1]:.1f}" if knee > 0 else "-"
            )
            cells = [
                configuration,
                workload,
                f"{summary['offered'][knee] / 1e9:.2f}",
                f"{summary['achieved'][knee] / 1e9:.2f}",
                before,
                f"{summary['p99'][knee]:.1f}",
                peak,
            ]
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    return lines
