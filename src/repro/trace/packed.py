"""Packed binary trace representation.

A :class:`~repro.trace.record.TraceStream` materializes every L2 miss as a
frozen dataclass instance -- convenient for construction and inspection, but
at paper scale (1 M-240 M requests per workload) the object overhead
dominates: ~200 bytes and one allocation per record, re-pickled once per
(configuration, workload) pair by the parallel harness.

:class:`PackedTrace` stores the same information in three flat fixed-width
columns -- 24 bytes per record, zero per-record objects:

* ``meta`` -- one ``uint64`` word per record packing the small fields::

      bit  0        kind        (1 = write)
      bit  1        shared      (the coherence ``S`` flag)
      bits 2..22    thread_id   (20 bits)
      bits 22..38   home_cluster (16 bits)
      bits 38..64   size_bytes  (26 bits)

* ``addresses`` -- one ``uint64`` physical address per record;
* ``gaps`` -- one ``float64`` compute gap (cycles) per record, exact.

Records are stored contiguously per thread in replay order, with a thread
table (``thread_ids`` + ``offsets``) delimiting each thread's segment, so the
replay engine iterates fields directly out of the columns.  Every field
round-trips exactly (integers are stored verbatim, gaps as IEEE float64), so
a packed replay is bit-identical to an object-trace replay.

The columns are plain buffers, which is what makes the zero-copy pipeline
work: :meth:`PackedTrace.copy_into` lays them out in one
``multiprocessing.shared_memory`` block and :meth:`PackedTrace.from_buffer`
reconstructs a trace as ``memoryview`` casts over that block -- workers index
the parent's pages directly instead of unpickling a private copy.

:class:`PackedTraceBuilder` appends records chunk-wise (one array append per
column), which is how the workload generators emit packed traces without ever
materializing :class:`~repro.trace.record.TraceRecord` objects.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, NamedTuple, Sequence, Tuple, Union

from repro.trace.record import (
    CACHE_LINE_BYTES,
    AccessKind,
    TraceRecord,
    TraceStream,
)

# Bit layout of the packed meta word (uint64).
KIND_BIT = 1 << 0
SHARED_BIT = 1 << 1
THREAD_SHIFT = 2
THREAD_MASK = (1 << 20) - 1
HOME_SHIFT = 22
HOME_MASK = (1 << 16) - 1
SIZE_SHIFT = 38
SIZE_MASK = (1 << 26) - 1

#: Bytes per record across the three columns (meta + address + gap).
RECORD_BYTES = 24

_WRITE = AccessKind.WRITE


def pack_meta(
    thread_id: int,
    home_cluster: int,
    is_write: bool,
    shared: bool,
    size_bytes: int,
) -> int:
    """Pack the small per-record fields into one ``uint64`` word."""
    if not 0 <= thread_id <= THREAD_MASK:
        raise ValueError(f"thread id {thread_id} exceeds the 20-bit packed field")
    if not 0 <= home_cluster <= HOME_MASK:
        raise ValueError(
            f"home cluster {home_cluster} exceeds the 16-bit packed field"
        )
    if not 0 < size_bytes <= SIZE_MASK:
        raise ValueError(
            f"size {size_bytes} outside the 26-bit packed field (1..{SIZE_MASK})"
        )
    return (
        (KIND_BIT if is_write else 0)
        | (SHARED_BIT if shared else 0)
        | (thread_id << THREAD_SHIFT)
        | (home_cluster << HOME_SHIFT)
        | (size_bytes << SIZE_SHIFT)
    )


class PackedTraceHeader(NamedTuple):
    """Picklable shape metadata of a packed trace (the columns travel
    separately, e.g. through a shared-memory block).

    ``arrival_process``/``offered_rps`` carry a workload's open-loop
    arrival metadata (see :mod:`repro.trace.arrival`) through worker
    shipping; ``"closed"`` -- the default, and the value for every trace
    generated without an :class:`~repro.trace.arrival.ArrivalSpec` -- keeps
    the legacy gap-driven replay semantics.
    """

    name: str
    description: str
    num_clusters: int
    threads_per_cluster: int
    num_threads: int
    num_records: int
    arrival_process: str = "closed"
    offered_rps: float = 0.0


def _column_bytes(column) -> bytes:
    """Raw bytes of a column regardless of backing (array or memoryview)."""
    return column.tobytes()


class PackedTrace:
    """A complete workload trace in packed columnar form.

    The column attributes (``thread_ids``, ``offsets``, ``meta``,
    ``addresses``, ``gaps``) are either :class:`array.array` instances (owned
    storage) or ``memoryview`` casts (zero-copy views over a shared buffer);
    both index to plain ints/floats, which is all the replay engine needs.
    """

    __slots__ = (
        "name",
        "description",
        "num_clusters",
        "threads_per_cluster",
        "thread_ids",
        "offsets",
        "meta",
        "addresses",
        "gaps",
        "arrival_process",
        "offered_rps",
    )

    def __init__(
        self,
        name: str,
        num_clusters: int,
        threads_per_cluster: int,
        thread_ids,
        offsets,
        meta,
        addresses,
        gaps,
        description: str = "",
        arrival_process: str = "closed",
        offered_rps: float = 0.0,
    ) -> None:
        if len(offsets) != len(thread_ids) + 1:
            raise ValueError(
                f"offset table has {len(offsets)} entries for "
                f"{len(thread_ids)} threads (expected threads + 1)"
            )
        if len(meta) != len(addresses) or len(meta) != len(gaps):
            raise ValueError("packed columns disagree on record count")
        if len(offsets) and offsets[-1] != len(meta):
            raise ValueError(
                f"offset table ends at {offsets[-1]} but {len(meta)} records "
                "are stored"
            )
        self.name = name
        self.description = description
        self.num_clusters = num_clusters
        self.threads_per_cluster = threads_per_cluster
        self.thread_ids = thread_ids
        self.offsets = offsets
        self.meta = meta
        self.addresses = addresses
        self.gaps = gaps
        self.arrival_process = arrival_process
        self.offered_rps = offered_rps

    # ----------------------------------------------------------- inspection
    @property
    def total_requests(self) -> int:
        return len(self.meta)

    @property
    def total_threads(self) -> int:
        return self.num_clusters * self.threads_per_cluster

    def thread_segments(self) -> Iterator[Tuple[int, int, int, int]]:
        """Yield ``(thread_id, cluster_id, start, stop)`` per stored thread,
        in replay order."""
        offsets = self.offsets
        tpc = self.threads_per_cluster
        for position, thread_id in enumerate(self.thread_ids):
            yield thread_id, thread_id // tpc, offsets[position], offsets[position + 1]

    def records(self) -> Iterator[TraceRecord]:
        """Decode every record, in stored (replay) order."""
        meta = self.meta
        addresses = self.addresses
        gaps = self.gaps
        for _thread_id, cluster, start, stop in self.thread_segments():
            for index in range(start, stop):
                word = meta[index]
                yield TraceRecord(
                    thread_id=(word >> THREAD_SHIFT) & THREAD_MASK,
                    cluster_id=cluster,
                    home_cluster=(word >> HOME_SHIFT) & HOME_MASK,
                    kind=_WRITE if word & KIND_BIT else AccessKind.READ,
                    address=addresses[index],
                    gap_cycles=gaps[index],
                    size_bytes=word >> SIZE_SHIFT,
                    shared=bool(word & SHARED_BIT),
                )

    def shared_fraction(self) -> float:
        total = self.total_requests
        if total == 0:
            return 0.0
        shared = sum(1 for word in self.meta if word & SHARED_BIT)
        return shared / total

    def destination_histogram(self) -> Dict[int, int]:
        histogram: Dict[int, int] = {}
        for word in self.meta:
            home = (word >> HOME_SHIFT) & HOME_MASK
            histogram[home] = histogram.get(home, 0) + 1
        return histogram

    # ---------------------------------------------------------- conversion
    @classmethod
    def from_stream(cls, stream: TraceStream) -> "PackedTrace":
        """Pack a :class:`TraceStream`, preserving its replay (insertion)
        order so a packed replay schedules events exactly like the stream."""
        builder = PackedTraceBuilder(
            name=stream.name,
            num_clusters=stream.num_clusters,
            threads_per_cluster=stream.threads_per_cluster,
            description=stream.description,
        )
        append = builder.append
        for thread_id, thread in stream.threads.items():
            expected = thread_id // stream.threads_per_cluster
            if thread.cluster_id != expected:
                raise ValueError(
                    f"thread {thread_id} claims cluster {thread.cluster_id}, "
                    f"expected {expected}"
                )
            for record in thread.records:
                append(
                    record.thread_id,
                    record.home_cluster,
                    record.kind is _WRITE,
                    record.shared,
                    record.address,
                    record.gap_cycles,
                    record.size_bytes,
                )
        return builder.build()

    def to_stream(self) -> TraceStream:
        """Materialize the packed records back into a :class:`TraceStream`."""
        stream = TraceStream(
            name=self.name,
            num_clusters=self.num_clusters,
            threads_per_cluster=self.threads_per_cluster,
            description=self.description,
        )
        for record in self.records():
            stream.add(record)
        return stream

    # ------------------------------------------------------ buffer shipping
    def header(self) -> PackedTraceHeader:
        return PackedTraceHeader(
            name=self.name,
            description=self.description,
            num_clusters=self.num_clusters,
            threads_per_cluster=self.threads_per_cluster,
            num_threads=len(self.thread_ids),
            num_records=len(self.meta),
            arrival_process=self.arrival_process,
            offered_rps=self.offered_rps,
        )

    def nbytes(self) -> int:
        """Bytes needed by :meth:`copy_into` (all five columns, 8 B items)."""
        threads = len(self.thread_ids)
        return 8 * (threads + (threads + 1) + 3 * len(self.meta))

    def _columns(self) -> Sequence:
        return (self.thread_ids, self.offsets, self.meta, self.addresses, self.gaps)

    def copy_into(self, buffer) -> int:
        """Lay the columns out back to back in ``buffer``; returns bytes used."""
        view = memoryview(buffer)
        offset = 0
        for column in self._columns():
            data = _column_bytes(column)
            view[offset:offset + len(data)] = data
            offset += len(data)
        return offset

    @classmethod
    def from_buffer(cls, header: PackedTraceHeader, buffer) -> "PackedTrace":
        """Reconstruct a trace as zero-copy views over ``buffer`` (the
        :meth:`copy_into` layout).  The buffer must outlive the trace."""
        threads = header.num_threads
        records = header.num_records
        view = memoryview(buffer)
        cursor = 0

        def take(code: str, count: int):
            nonlocal cursor
            size = 8 * count
            column = view[cursor:cursor + size].cast(code)
            cursor += size
            return column

        return cls(
            name=header.name,
            num_clusters=header.num_clusters,
            threads_per_cluster=header.threads_per_cluster,
            thread_ids=take("q", threads),
            offsets=take("q", threads + 1),
            meta=take("Q", records),
            addresses=take("Q", records),
            gaps=take("d", records),
            description=header.description,
            arrival_process=header.arrival_process,
            offered_rps=header.offered_rps,
        )

    # -------------------------------------------------------------- dunder
    def __len__(self) -> int:
        return len(self.meta)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedTrace):
            return NotImplemented
        if self.header() != other.header():
            return False
        return all(
            _column_bytes(mine) == _column_bytes(theirs)
            for mine, theirs in zip(self._columns(), other._columns())
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PackedTrace({self.name!r}, records={len(self.meta)}, "
            f"threads={len(self.thread_ids)})"
        )


class PackedTraceBuilder:
    """Chunk-wise accumulator of packed records.

    ``append`` costs three array appends and no object allocation, so trace
    generators stream records straight into the packed columns.  Records of
    one thread must be appended contiguously (the generators are
    thread-major, so this falls out naturally).
    """

    __slots__ = (
        "name",
        "description",
        "num_clusters",
        "threads_per_cluster",
        "arrival_process",
        "offered_rps",
        "_thread_ids",
        "_offsets",
        "_meta",
        "_addresses",
        "_gaps",
        "_current_thread",
    )

    def __init__(
        self,
        name: str,
        num_clusters: int,
        threads_per_cluster: int,
        description: str = "",
        arrival_process: str = "closed",
        offered_rps: float = 0.0,
    ) -> None:
        self.name = name
        self.description = description
        self.arrival_process = arrival_process
        self.offered_rps = offered_rps
        self.num_clusters = num_clusters
        self.threads_per_cluster = threads_per_cluster
        self._thread_ids = array("q")
        self._offsets = array("q", [0])
        self._meta = array("Q")
        self._addresses = array("Q")
        self._gaps = array("d")
        self._current_thread = -1

    def append(
        self,
        thread_id: int,
        home_cluster: int,
        is_write: bool,
        shared: bool,
        address: int,
        gap_cycles: float,
        size_bytes: int = CACHE_LINE_BYTES,
    ) -> None:
        """Append one record to the current (or a new) thread segment."""
        if thread_id != self._current_thread:
            if thread_id in self._thread_ids:
                raise ValueError(
                    f"thread {thread_id} appended non-contiguously"
                )
            cluster = thread_id // self.threads_per_cluster
            if cluster >= self.num_clusters:
                raise ValueError(
                    f"thread {thread_id} maps to cluster {cluster}, beyond "
                    f"{self.num_clusters} clusters"
                )
            self._thread_ids.append(thread_id)
            self._offsets.append(self._offsets[-1])
            self._current_thread = thread_id
        if gap_cycles < 0:
            raise ValueError(f"gap cycles must be non-negative, got {gap_cycles}")
        if not 0 <= address < 1 << 64:
            raise ValueError(f"address {address:#x} does not fit in 64 bits")
        self._meta.append(
            pack_meta(thread_id, home_cluster, is_write, shared, size_bytes)
        )
        self._addresses.append(address)
        self._gaps.append(gap_cycles)
        self._offsets[-1] += 1

    def build(self) -> PackedTrace:
        return PackedTrace(
            name=self.name,
            num_clusters=self.num_clusters,
            threads_per_cluster=self.threads_per_cluster,
            thread_ids=self._thread_ids,
            offsets=self._offsets,
            meta=self._meta,
            addresses=self._addresses,
            gaps=self._gaps,
            description=self.description,
            arrival_process=self.arrival_process,
            offered_rps=self.offered_rps,
        )


#: Either trace representation; the replay engine accepts both.
AnyTrace = Union[TraceStream, PackedTrace]


def as_packed(trace: AnyTrace) -> PackedTrace:
    """Coerce either trace representation to packed form."""
    if isinstance(trace, PackedTrace):
        return trace
    return PackedTrace.from_stream(trace)


def generate_packed_trace(workload, seed: int, num_requests) -> PackedTrace:
    """Generate ``workload``'s trace in packed form.

    Uses the workload's native ``generate_packed`` (zero record objects)
    when it has one, packing the ``generate`` stream otherwise -- the single
    dispatch point for every harness entry that needs a packed trace.
    """
    generate = getattr(workload, "generate_packed", None)
    if generate is not None:
        return generate(seed=seed, num_requests=num_requests)
    return as_packed(workload.generate(seed=seed, num_requests=num_requests))
