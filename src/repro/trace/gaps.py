"""Compute-gap distribution shared by the workload generators.

The inter-miss compute gap of a thread is drawn from a gamma distribution
with a moderate shape parameter.  An exponential (shape 1) would give the
memoryless burstiness of a Poisson process, which is too heavy-tailed for the
loop-structured SPLASH-2 codes: with ~1000 threads the run's makespan would be
dominated by the single unluckiest thread rather than by the interconnect and
memory system under study.  Shape 3 keeps realistic variability while keeping
per-thread progress rates comparable.
"""

from __future__ import annotations

import random

#: Shape parameter of the gamma-distributed compute gaps.
GAP_GAMMA_SHAPE = 3.0


def draw_gap(
    rng: random.Random,
    mean_gap_cycles: float,
    shape: float = GAP_GAMMA_SHAPE,
) -> float:
    """Draw one compute gap (in core cycles) with the given mean."""
    if mean_gap_cycles < 0:
        raise ValueError(f"mean gap must be non-negative, got {mean_gap_cycles}")
    if shape <= 0:
        raise ValueError(f"gamma shape must be positive, got {shape}")
    if mean_gap_cycles == 0:
        return 0.0
    return rng.gammavariate(shape, mean_gap_cycles / shape)
