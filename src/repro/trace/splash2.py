"""Statistical SPLASH-2 workload models (Table 3 of the Corona paper).

The paper replays L2-miss traces of eleven SPLASH-2 applications collected
from 1024-thread full-system simulation (COTSon) with scaled datasets.  The
original traces are not available, and collecting them is outside the scope of
a pure Python reproduction, so each application is modelled as a statistical
miss process whose parameters are calibrated to the paper's own evidence:

* the per-benchmark *network request counts* of Table 3;
* the *achieved-bandwidth classes* of Figure 9 -- Barnes, Radiosity, Volrend
  and Water-Sp demand less than ECM provides, FMM needs slightly more,
  Cholesky/FFT/Ocean/Radix demand 2-5 TB/s, and LU/Raytrace are bursty and
  latency-bound rather than bandwidth-bound;
* the qualitative descriptions in Section 5 (for example "many threads attempt
  to access the same remotely stored matrix block at the same time, following
  a barrier" for LU).

Each profile specifies the mean inter-miss gap per thread (which sets demand
bandwidth), the read/write mix, the fraction of misses that hit the issuing
cluster's own memory controller (locality), the per-thread memory-level
parallelism window, and a burst model (period, length, intensity and
concentration) that reproduces the barrier-driven traffic spikes of LU and
Raytrace.  The miss process is what the paper's network study consumes, so a
calibrated process exercises the same code paths with the same first-order
load.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.coherence.sharing import (
    SharingProfile,
    home_for_line,
    resolve_sharing,
    shared_line_address,
)
from repro.trace.arrival import ArrivalSpec, arrival_streams
from repro.trace.gaps import draw_gap
from repro.trace.packed import PackedTrace, PackedTraceBuilder
from repro.trace.record import AccessKind, TraceRecord, TraceStream


@dataclass(frozen=True)
class Splash2Profile:
    """Calibrated statistical parameters of one SPLASH-2 application.

    Parameters
    ----------
    name:
        Benchmark name as plotted in the paper.
    dataset:
        The scaled dataset used by the paper (Table 3), for reporting.
    default_dataset:
        The suite's default dataset (Table 3), for reporting.
    paper_requests:
        Network request (L2 miss) count reported in Table 3.
    mean_gap_cycles:
        Mean compute cycles between consecutive misses of one thread; sets the
        workload's demand bandwidth.
    write_fraction:
        Fraction of misses that are writes (stores / writebacks).
    local_fraction:
        Fraction of misses homed at the issuing cluster's own memory
        controller (data placement locality).
    window:
        Per-thread outstanding-miss window (memory-level parallelism).
    burst_period:
        Misses between barrier-style bursts (0 disables bursts).
    burst_length:
        Misses per burst.
    burst_gap_cycles:
        Mean gap during a burst (small => intense spike).
    burst_concentration:
        Fraction of burst misses that target the burst's single hot cluster.
    """

    name: str
    dataset: str
    default_dataset: str
    paper_requests: int
    mean_gap_cycles: float
    write_fraction: float = 0.3
    local_fraction: float = 0.2
    window: int = 4
    burst_period: int = 0
    burst_length: int = 0
    burst_gap_cycles: float = 4.0
    burst_concentration: float = 0.9

    def __post_init__(self) -> None:
        if self.mean_gap_cycles <= 0:
            raise ValueError(
                f"{self.name}: mean gap must be positive, got {self.mean_gap_cycles}"
            )
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError(f"{self.name}: bad write fraction")
        if not 0.0 <= self.local_fraction <= 1.0:
            raise ValueError(f"{self.name}: bad local fraction")
        if self.window < 1:
            raise ValueError(f"{self.name}: window must be >= 1")

    def demand_bandwidth_tbps(
        self,
        total_threads: int = 1024,
        clock_hz: float = 5e9,
        line_bytes: int = 64,
    ) -> float:
        """Offered main-memory bandwidth if no resource ever stalls a thread."""
        gap_seconds = self.mean_gap_cycles / clock_hz
        per_thread = line_bytes / gap_seconds
        return per_thread * total_threads / 1e12


# ---------------------------------------------------------------------------
# Calibrated profiles.  Gap calibration: with 1024 threads at 5 GHz and 64 B
# lines, demand bandwidth ~= 327.68 / gap_cycles TB/s.
# ---------------------------------------------------------------------------
SPLASH2_PROFILES: Dict[str, Splash2Profile] = {
    profile.name: profile
    for profile in [
        # Low-bandwidth group: fits comfortably in ECM's 0.96 TB/s.
        Splash2Profile(
            name="Barnes",
            dataset="64 K particles",
            default_dataset="16 K particles",
            paper_requests=7_200_000,
            mean_gap_cycles=1100.0,
            write_fraction=0.31,
            local_fraction=0.35,
            window=2,
        ),
        Splash2Profile(
            name="Radiosity",
            dataset="roomlarge",
            default_dataset="room",
            paper_requests=4_200_000,
            mean_gap_cycles=1300.0,
            write_fraction=0.27,
            local_fraction=0.30,
            window=2,
        ),
        Splash2Profile(
            name="Volrend",
            dataset="head",
            default_dataset="head",
            paper_requests=3_600_000,
            mean_gap_cycles=1500.0,
            write_fraction=0.22,
            local_fraction=0.40,
            window=2,
        ),
        Splash2Profile(
            name="Water-Sp",
            dataset="32 K molecules",
            default_dataset="512 molecules",
            paper_requests=3_200_000,
            mean_gap_cycles=1600.0,
            write_fraction=0.30,
            local_fraction=0.45,
            window=2,
        ),
        # FMM needs somewhat more bandwidth than ECM provides.
        Splash2Profile(
            name="FMM",
            dataset="1 M particles",
            default_dataset="16 K particles",
            paper_requests=1_800_000,
            mean_gap_cycles=200.0,
            write_fraction=0.28,
            local_fraction=0.30,
            window=4,
        ),
        # High-bandwidth group: 2-5 TB/s demand, crossbar + OCM shine.
        Splash2Profile(
            name="Cholesky",
            dataset="tk29.O",
            default_dataset="tk15.O",
            paper_requests=600_000,
            mean_gap_cycles=110.0,
            write_fraction=0.34,
            local_fraction=0.15,
            window=6,
        ),
        Splash2Profile(
            name="FFT",
            dataset="16 M points",
            default_dataset="64 K points",
            paper_requests=176_000_000,
            mean_gap_cycles=52.0,
            write_fraction=0.40,
            local_fraction=0.10,
            window=8,
        ),
        Splash2Profile(
            name="Ocean",
            dataset="2050x2050 grid",
            default_dataset="258x258 grid",
            paper_requests=240_000_000,
            mean_gap_cycles=62.0,
            write_fraction=0.38,
            local_fraction=0.25,
            window=6,
        ),
        Splash2Profile(
            name="Radix",
            dataset="64 M integers",
            default_dataset="1 M integers",
            paper_requests=189_000_000,
            mean_gap_cycles=50.0,
            write_fraction=0.45,
            local_fraction=0.10,
            window=8,
        ),
        # Bursty, latency-sensitive group: moderate average bandwidth but
        # barrier-synchronized spikes at a single home cluster.
        Splash2Profile(
            name="LU",
            dataset="2048x2048 matrix",
            default_dataset="512x512 matrix",
            paper_requests=34_000_000,
            mean_gap_cycles=300.0,
            write_fraction=0.35,
            local_fraction=0.10,
            window=4,
            burst_period=64,
            burst_length=10,
            burst_gap_cycles=20.0,
            burst_concentration=0.7,
        ),
        Splash2Profile(
            name="Raytrace",
            dataset="balls4",
            default_dataset="car",
            paper_requests=700_000,
            mean_gap_cycles=340.0,
            write_fraction=0.20,
            local_fraction=0.15,
            window=3,
            burst_period=48,
            burst_length=8,
            burst_gap_cycles=20.0,
            burst_concentration=0.7,
        ),
    ]
}

#: Calibrated per-benchmark sharing profiles for coherence-enabled replays.
#: The SPLASH-2 characterization literature (and the suite's own
#: documentation) describes each application's sharing style; the profiles
#: translate those descriptions into the :class:`SharingProfile` axes:
#: *fraction* (how much of the miss stream touches truly shared data),
#: *zipf_s* (how concentrated the sharing is -- task queues and pivot blocks
#: are hot, boundary exchanges are diffuse) and *write_fraction* (read-mostly
#: scene data vs migratory accumulators).  They are **opt-in**: a stock
#: :class:`Splash2Workload` carries no profile, so every existing trace,
#: result and benchmark stays bit-identical.  Request them per workload with
#: ``sharing="default"`` (or any explicit profile) -- scenario files say
#: ``{"name": "Barnes", "sharing": "default"}``.
SPLASH2_SHARING_PROFILES: Dict[str, SharingProfile] = {
    # Octree cells migrate between owners as bodies move.
    "Barnes": SharingProfile(fraction=0.25, zipf_s=0.9, write_fraction=0.20),
    # Supernodal panels are fetched by several consumers before updates.
    "Cholesky": SharingProfile(fraction=0.20, zipf_s=0.7, write_fraction=0.30),
    # The transpose is all-to-all communication, but little data is touched
    # by many clusters repeatedly: small fraction, flat popularity.
    "FFT": SharingProfile(fraction=0.05, zipf_s=0.3, write_fraction=0.40),
    # Interaction lists are read by neighbours, accumulated by owners.
    "FMM": SharingProfile(fraction=0.20, zipf_s=0.8, write_fraction=0.15),
    # Every thread chases the current pivot block after a barrier: few,
    # very hot lines.
    "LU": SharingProfile(
        fraction=0.30, num_lines=256, zipf_s=1.2, write_fraction=0.25
    ),
    # Nearest-neighbour boundary rows: diffuse, write-carrying exchange.
    "Ocean": SharingProfile(fraction=0.10, zipf_s=0.4, write_fraction=0.35),
    # Distributed task queue plus shared patch radiosities: hot and mixed.
    "Radiosity": SharingProfile(fraction=0.35, zipf_s=1.1, write_fraction=0.30),
    # Global histogram / rank arrays, write-heavy during permutation.
    "Radix": SharingProfile(fraction=0.15, zipf_s=0.9, write_fraction=0.50),
    # Read-mostly scene geometry plus a hot task queue.
    "Raytrace": SharingProfile(fraction=0.30, zipf_s=1.0, write_fraction=0.05),
    # Read-mostly voxel/opacity maps.
    "Volrend": SharingProfile(fraction=0.25, zipf_s=0.8, write_fraction=0.05),
    # Small per-molecule force arrays, lightly shared.
    "Water-Sp": SharingProfile(fraction=0.10, zipf_s=0.6, write_fraction=0.25),
}

#: Plot order used by the paper's figures.
SPLASH2_ORDER: List[str] = [
    "Barnes",
    "Cholesky",
    "FFT",
    "FMM",
    "LU",
    "Ocean",
    "Radiosity",
    "Radix",
    "Raytrace",
    "Volrend",
    "Water-Sp",
]


@dataclass
class Splash2Workload:
    """A SPLASH-2 workload generator built around a calibrated profile.

    ``sharing`` is **off by default** so results stay bit-identical to the
    sharing-free models: pass ``"default"`` to adopt the benchmark's
    calibrated :data:`SPLASH2_SHARING_PROFILES` entry, or any explicit
    :class:`~repro.coherence.sharing.SharingProfile`.  ``label`` renames the
    workload in traces and reports (scenario sweeps replaying one benchmark
    under several profiles need distinct names).
    """

    profile: Splash2Profile
    num_clusters: int = 64
    threads_per_cluster: int = 16
    num_requests: Optional[int] = None
    sharing: Optional[Union[str, SharingProfile]] = None
    arrival: Optional[Union[dict, ArrivalSpec]] = None
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_requests is None:
            self.num_requests = self.profile.paper_requests
        if isinstance(self.arrival, dict):
            self.arrival = ArrivalSpec.from_dict(self.arrival)

        def benchmark_default() -> SharingProfile:
            profile = SPLASH2_SHARING_PROFILES.get(self.profile.name)
            if profile is None:
                from repro.coherence.sharing import default_sharing_profile

                profile = default_sharing_profile()
            return profile

        self.sharing = resolve_sharing(self.sharing, benchmark_default)

    @property
    def name(self) -> str:
        return self.label or self.profile.name

    @property
    def window(self) -> int:
        return self.profile.window

    @property
    def is_synthetic(self) -> bool:
        return False

    def _destination(
        self,
        cluster: int,
        rng: random.Random,
        in_burst: bool,
        burst_home: int,
    ) -> int:
        profile = self.profile
        if in_burst and rng.random() < profile.burst_concentration:
            return burst_home
        if rng.random() < profile.local_fraction:
            return cluster
        return rng.randrange(self.num_clusters)

    def _description(self) -> str:
        profile = self.profile
        return (
            f"SPLASH-2 {profile.name} ({profile.dataset}); statistical model "
            f"of the paper's {profile.paper_requests:,}-request trace"
        )

    def _emit_records(self, emit, seed: int, total: int) -> None:
        """Drive the generation loop, calling
        ``emit(thread_id, cluster, home, is_write, address, gap, shared)``
        per miss.

        Shared by :meth:`generate` and :meth:`generate_packed`; the rng draw
        sequence depends only on the profile, the sharing profile and
        ``seed``, so both representations carry field-identical records.
        With no sharing profile the draw sequence is exactly the historical
        one, keeping sharing-free traces bit-identical.
        """
        profile = self.profile
        if total < 1:
            raise ValueError(f"request count must be >= 1, got {total}")
        rng = random.Random(seed)
        total_threads = self.num_clusters * self.threads_per_cluster
        base, remainder = divmod(total, total_threads)
        # Stagger thread starts: the trace window opens mid-execution, so the
        # threads should not all fire their first miss at t = 0.
        stagger_cycles = 8.0 * profile.mean_gap_cycles
        sharing = self.sharing if self.sharing and self.sharing.enabled else None
        shared_cumulative = sharing.cumulative_weights() if sharing else None
        # Open-loop arrivals replace the benchmark's think/burst gap model
        # (and the stagger) with the rate-driven schedule; destination and
        # write draws keep their historical rng sequence.
        arrivals = arrival_streams(self.arrival, total_threads, seed)
        line_counter = 0
        for thread_id in range(total_threads):
            cluster = thread_id // self.threads_per_cluster
            count = base + (1 if thread_id < remainder else 0)
            thread_arrivals = next(arrivals) if arrivals is not None else None
            for miss_index in range(count):
                in_burst = False
                burst_home = 0
                if profile.burst_period > 0 and profile.burst_length > 0:
                    phase, offset = divmod(miss_index, profile.burst_period)
                    in_burst = offset < profile.burst_length
                    # All threads in the same phase chase the same hot block,
                    # which is what the post-barrier access pattern of LU and
                    # Raytrace does to a mesh.
                    burst_home = (phase * 2654435761) % self.num_clusters
                if thread_arrivals is not None:
                    gap = thread_arrivals.next_gap()
                else:
                    if in_burst:
                        mean_gap = profile.burst_gap_cycles
                    else:
                        mean_gap = profile.mean_gap_cycles
                    gap = draw_gap(rng, mean_gap)
                    if miss_index == 0 and stagger_cycles > 0:
                        gap += rng.uniform(0.0, stagger_cycles)
                if sharing is not None and rng.random() < sharing.fraction:
                    # Shared miss: target the benchmark's shared-line pool
                    # (dedicated address region, own write mix) exactly like
                    # the synthetic generators do.
                    line = sharing.draw_line(rng, shared_cumulative)
                    home = home_for_line(line, self.num_clusters)
                    address = shared_line_address(line, self.num_clusters)
                    is_write = rng.random() < sharing.write_fraction
                    emit(thread_id, cluster, home, is_write, address, gap, True)
                    continue
                is_write = rng.random() < profile.write_fraction
                home = self._destination(cluster, rng, in_burst, burst_home)
                address = (home << 26) | ((line_counter & 0xFFFFF) << 6)
                line_counter += 1
                emit(thread_id, cluster, home, is_write, address, gap, False)

    def generate(
        self, seed: int = 1, num_requests: Optional[int] = None
    ) -> TraceStream:
        """Generate the miss trace as a :class:`TraceStream`.

        ``num_requests`` scales the paper's Table 3 request count down (or up)
        while keeping the per-thread statistics unchanged.
        """
        total = num_requests if num_requests is not None else self.num_requests
        stream = TraceStream(
            name=self.name,
            num_clusters=self.num_clusters,
            threads_per_cluster=self.threads_per_cluster,
            description=self._description(),
        )
        add = stream.add

        def emit(thread_id, cluster, home, is_write, address, gap, shared):
            add(
                TraceRecord(
                    thread_id=thread_id,
                    cluster_id=cluster,
                    home_cluster=home,
                    kind=AccessKind.WRITE if is_write else AccessKind.READ,
                    address=address,
                    gap_cycles=gap,
                    shared=shared,
                )
            )

        self._emit_records(emit, seed, total)
        return stream

    def generate_packed(
        self, seed: int = 1, num_requests: Optional[int] = None
    ) -> PackedTrace:
        """Generate the miss trace directly in packed columnar form
        (field-identical to :meth:`generate`, no per-record objects)."""
        total = num_requests if num_requests is not None else self.num_requests
        arrival = self.arrival if self.arrival and self.arrival.enabled else None
        builder = PackedTraceBuilder(
            name=self.name,
            num_clusters=self.num_clusters,
            threads_per_cluster=self.threads_per_cluster,
            description=self._description(),
            arrival_process=arrival.process if arrival else "closed",
            offered_rps=arrival.offered_rps() if arrival else 0.0,
        )
        append = builder.append

        def emit(thread_id, _cluster, home, is_write, address, gap, shared):
            append(thread_id, home, is_write, shared, address, gap)

        self._emit_records(emit, seed, total)
        return builder.build()


def splash2_workload(name: str, **overrides) -> Splash2Workload:
    """Build the workload for one SPLASH-2 benchmark by name."""
    if name not in SPLASH2_PROFILES:
        raise KeyError(
            f"unknown SPLASH-2 benchmark {name!r}; "
            f"known: {sorted(SPLASH2_PROFILES)}"
        )
    return Splash2Workload(profile=SPLASH2_PROFILES[name], **overrides)


def splash2_workloads(**overrides) -> List[Splash2Workload]:
    """All eleven SPLASH-2 workloads in the paper's plot order."""
    return [splash2_workload(name, **overrides) for name in SPLASH2_ORDER]
