"""Open-loop arrival processes for trace generation.

Every workload in the reproduction was historically *closed-loop*: each
thread draws a gamma-distributed think gap after the previous miss, so a
slow system slows its own offered load and no configuration can ever be
pushed past saturation.  An :class:`ArrivalSpec` turns a workload
*open-loop*: inter-arrival gaps are drawn from a rate-parameterized
process (Poisson, or a two-state Markov-modulated Poisson process for
bursty traffic) and written into the packed gap column at generation
time, so the arrival schedule is fixed regardless of how the system keeps
up.  The replay engine then timestamps each request at its *arrival*
instant and reports sojourn time (queueing + service), which is what
diverges honestly past the knee.

The spec is a frozen scenario node (``workloads[*].arrival``), validated
field-by-field like :class:`~repro.faults.spec.FaultSpec`: invalid values
raise :class:`ArrivalError` naming the offending field, which the
scenario layer re-raises as a field-path :class:`ScenarioError`.

Determinism: all arrival draws come from a dedicated generator seeded by
``(arrival.seed, trace seed)`` -- independent of the workload's own rng,
so the address/destination/sharing stream of an open-loop trace matches
replays under any worker count, and changing only the offered rate never
perturbs the non-gap draws.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional

#: The packed gap column is denominated in 5 GHz core-clock cycles
#: (``CoronaConfig.clock_hz``); arrival rates are requests/second, so this
#: constant converts between the two without importing the core config.
GAP_CLOCK_HZ = 5.0e9

#: Recognized arrival processes.  ``closed`` keeps the legacy gamma think
#: gaps (bit-identical to an absent spec); the other two are open-loop.
ARRIVAL_PROCESSES = ("closed", "poisson", "mmpp")

#: Mean arrivals per burst episode for the MMPP process: the expected
#: burst-state sojourn is this many burst-rate inter-arrival times, and
#: the idle sojourn follows from ``burst_fraction``.
MMPP_ARRIVALS_PER_BURST = 32.0


class ArrivalError(ValueError):
    """An :class:`ArrivalSpec` field failed validation.

    ``field`` names the offending field so the scenario layer can turn it
    into a precise ``workloads[i].arrival.<field>`` path.
    """

    def __init__(self, field: str, reason: str) -> None:
        super().__init__(f"{field}: {reason}")
        self.field = field
        self.reason = reason


@dataclass(frozen=True)
class ArrivalSpec:
    """Open-loop arrival process parameters for one workload.

    ``rate_rps`` is the *aggregate* offered load across all threads in
    requests/second; each thread runs an independent stream at
    ``rate_rps / num_threads``.  For ``mmpp`` the process alternates
    between an idle state arriving at ``rate_rps`` and a burst state at
    ``burst_rate_rps``, spending ``burst_fraction`` of time (long-run) in
    the burst state; the time-averaged offered load is then
    ``(1 - f) * rate + f * burst_rate``.
    """

    process: str = "closed"
    rate_rps: float = 0.0
    burst_rate_rps: float = 0.0
    burst_fraction: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.process not in ARRIVAL_PROCESSES:
            raise ArrivalError(
                "process",
                f"unknown arrival process {self.process!r}; "
                f"expected one of {list(ARRIVAL_PROCESSES)}",
            )
        rate = self._expect_number("rate_rps", self.rate_rps)
        burst = self._expect_number("burst_rate_rps", self.burst_rate_rps)
        fraction = self._expect_number("burst_fraction", self.burst_fraction)
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ArrivalError(
                "seed", f"must be an integer, got {self.seed!r}"
            )
        if self.process in ("poisson", "mmpp") and rate <= 0.0:
            raise ArrivalError(
                "rate_rps",
                f"{self.process} arrivals need a positive rate, got {rate!r}",
            )
        if self.process == "mmpp":
            if burst <= rate:
                raise ArrivalError(
                    "burst_rate_rps",
                    f"must exceed rate_rps ({rate!r}) for a burst state, "
                    f"got {burst!r}",
                )
            if not 0.0 < fraction < 1.0:
                raise ArrivalError(
                    "burst_fraction",
                    f"must be strictly between 0 and 1, got {fraction!r}",
                )
        else:
            if self.process == "closed" and rate != 0.0:
                raise ArrivalError(
                    "rate_rps",
                    f"only meaningful for open-loop processes, got {rate!r}",
                )
            if burst != 0.0:
                raise ArrivalError(
                    "burst_rate_rps",
                    f"only meaningful for process 'mmpp', got {burst!r}",
                )
            if fraction != 0.0:
                raise ArrivalError(
                    "burst_fraction",
                    f"only meaningful for process 'mmpp', got {fraction!r}",
                )

    @staticmethod
    def _expect_number(field: str, value) -> float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ArrivalError(field, f"must be a number, got {value!r}")
        return float(value)

    # -- derived -----------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """True when the spec actually changes gap generation."""
        return self.process != "closed"

    def offered_rps(self) -> float:
        """The time-averaged aggregate offered load in requests/second."""
        if self.process == "poisson":
            return self.rate_rps
        if self.process == "mmpp":
            f = self.burst_fraction
            return (1.0 - f) * self.rate_rps + f * self.burst_rate_rps
        return 0.0

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "process": self.process,
            "rate_rps": self.rate_rps,
            "burst_rate_rps": self.burst_rate_rps,
            "burst_fraction": self.burst_fraction,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ArrivalSpec":
        if not isinstance(data, dict):
            raise ArrivalError(
                "arrival", f"must be a mapping, got {type(data).__name__}"
            )
        known = {"process", "rate_rps", "burst_rate_rps", "burst_fraction", "seed"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ArrivalError(
                unknown[0], f"unknown arrival field (known: {sorted(known)})"
            )
        fields = dict(data)
        seed = fields.get("seed", 0)
        if isinstance(seed, float) and seed.is_integer():
            fields["seed"] = int(seed)
        return cls(**fields)


class ThreadArrivals:
    """Successive inter-arrival gaps (in core cycles) for one thread.

    One instance per thread, consumed in thread order during generation;
    all draws come from the shared arrival rng, so the gap stream is a
    pure function of ``(spec.seed, trace seed)``.
    """

    __slots__ = (
        "_rng", "_idle_gap", "_burst_gap", "_in_burst",
        "_idle_sojourn", "_burst_sojourn", "_switch_remaining",
    )

    def __init__(self, spec: ArrivalSpec, num_threads: int, rng: random.Random) -> None:
        per_thread = spec.rate_rps / num_threads
        self._rng = rng
        self._idle_gap = GAP_CLOCK_HZ / per_thread
        if spec.process == "mmpp":
            per_thread_burst = spec.burst_rate_rps / num_threads
            self._burst_gap = GAP_CLOCK_HZ / per_thread_burst
            self._burst_sojourn = MMPP_ARRIVALS_PER_BURST * self._burst_gap
            self._idle_sojourn = (
                self._burst_sojourn
                * (1.0 - spec.burst_fraction) / spec.burst_fraction
            )
            self._in_burst = rng.random() < spec.burst_fraction
            self._switch_remaining = rng.expovariate(
                1.0 / (self._burst_sojourn if self._in_burst else self._idle_sojourn)
            )
        else:
            self._burst_gap = 0.0
            self._burst_sojourn = 0.0
            self._idle_sojourn = 0.0
            self._in_burst = False
            self._switch_remaining = float("inf")

    def next_gap(self) -> float:
        """The next inter-arrival gap in core cycles."""
        rng = self._rng
        if self._switch_remaining == float("inf"):  # plain Poisson
            return rng.expovariate(1.0 / self._idle_gap)
        # MMPP: draw within the current state; when the candidate crosses
        # the state switch, consume the remaining sojourn, flip state and
        # redraw (the exponential's memorylessness makes this exact).
        elapsed = 0.0
        while True:
            mean = self._burst_gap if self._in_burst else self._idle_gap
            candidate = rng.expovariate(1.0 / mean)
            if candidate <= self._switch_remaining:
                self._switch_remaining -= candidate
                return elapsed + candidate
            elapsed += self._switch_remaining
            self._in_burst = not self._in_burst
            self._switch_remaining = rng.expovariate(
                1.0 / (self._burst_sojourn if self._in_burst else self._idle_sojourn)
            )


def arrival_streams(
    spec: Optional[ArrivalSpec], num_threads: int, seed: int
) -> Optional[Iterator[ThreadArrivals]]:
    """Per-thread gap streams for an enabled spec, else ``None``.

    Generators call this once per trace and pull one :class:`ThreadArrivals`
    per thread *in thread order*; the shared rng keeps the whole schedule
    deterministic while giving every thread an independent stream.
    """
    if spec is None or not spec.enabled:
        return None
    rng = random.Random(f"corona-arrival:{spec.seed}:{seed}")

    def streams() -> Iterator[ThreadArrivals]:
        while True:
            yield ThreadArrivals(spec, num_threads, rng)

    return streams()
