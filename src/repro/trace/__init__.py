"""Workload and trace generation (Section 4 / Table 3 of the Corona paper).

The paper's methodology is trace driven: a full-system simulator produced
L2-miss traces of 1024-thread runs, and a network simulator replayed them.
This package is the reproduction's stand-in for that first stage.  It
provides:

* :mod:`repro.trace.record` -- the L2-miss trace record format and streams.
* :mod:`repro.trace.synthetic` -- the paper's four synthetic traffic patterns
  (Uniform, Hot Spot, Tornado, Transpose) plus the Bit Reversal and Neighbor
  extensions, with optional sharing-tagged addresses for coherence-enabled
  replays.
* :mod:`repro.trace.splash2` -- statistical workload models of the eleven
  SPLASH-2 applications, calibrated to the paper's per-benchmark request
  counts and bandwidth classes.
* :mod:`repro.trace.packed` -- the packed columnar trace representation
  (24 bytes per record, zero per-record objects) the replay engine and the
  shared-memory worker pipeline consume.
* :mod:`repro.trace.io` -- text and packed-binary serialization of traces so
  generated traces can be cached on disk and replayed.
* :mod:`repro.trace.file` -- :class:`TraceFileWorkload`, wrapping an on-disk
  trace (either format) in the workload protocol so externally generated
  traces are scenario- and sweep-addressable (registered as ``trace-file``).
"""

from repro.trace.packed import (
    AnyTrace,
    PackedTrace,
    PackedTraceBuilder,
    as_packed,
    generate_packed_trace,
)
from repro.trace.record import AccessKind, TraceRecord, TraceStream, ThreadTrace
from repro.trace.synthetic import (
    SyntheticPattern,
    SyntheticWorkload,
    bit_reversal_workload,
    hot_spot_workload,
    neighbor_workload,
    synthetic_workloads,
    tornado_workload,
    transpose_workload,
    uniform_workload,
)
from repro.trace.splash2 import (
    Splash2Profile,
    Splash2Workload,
    SPLASH2_PROFILES,
    splash2_workload,
    splash2_workloads,
)
from repro.trace.io import (
    read_trace,
    read_trace_binary,
    write_trace,
    write_trace_binary,
)
from repro.trace.file import (
    TraceFileWorkload,
    trace_file_workload,
    truncate_packed,
)

__all__ = [
    "AccessKind",
    "AnyTrace",
    "PackedTrace",
    "PackedTraceBuilder",
    "as_packed",
    "generate_packed_trace",
    "TraceRecord",
    "TraceStream",
    "ThreadTrace",
    "SyntheticPattern",
    "SyntheticWorkload",
    "uniform_workload",
    "hot_spot_workload",
    "tornado_workload",
    "transpose_workload",
    "bit_reversal_workload",
    "neighbor_workload",
    "synthetic_workloads",
    "Splash2Profile",
    "Splash2Workload",
    "SPLASH2_PROFILES",
    "splash2_workload",
    "splash2_workloads",
    "read_trace",
    "read_trace_binary",
    "write_trace",
    "write_trace_binary",
    "TraceFileWorkload",
    "trace_file_workload",
    "truncate_packed",
]
