"""On-disk trace files as first-class harness workloads.

The replay engine has always been able to consume externally generated
traces -- ``corona-repro trace convert/info`` exposes the text and packed
binary formats on disk -- but only through hand-written code.
:class:`TraceFileWorkload` closes the gap: it wraps a trace file (either
format) in the small workload protocol the harness expects (``name``,
``window``, ``is_synthetic``, ``generate``/``generate_packed``), so a
COTSon-style external trace is addressable from scenario files and sweep
specs exactly like the synthetic and SPLASH-2 generators::

    {"workloads": [{"name": "trace-file",
                    "params": {"path": "ocean.trace.bin", "window": 8}}]}

The file's record count is exposed as :attr:`fixed_requests`, which the
evaluation matrices honor instead of the scale tier's synthetic count: by
default the whole file replays regardless of ``--scale``.  A smaller
``num_requests`` (the workload spec's top-level field) truncates the replay
deterministically -- each stored thread keeps a proportional prefix of its
segment, so two runs at the same count replay byte-identical traces.

``seed`` is accepted (the harness passes it uniformly) but ignored: the
trace is fixed data, not a generator.
"""

from __future__ import annotations

from array import array
from pathlib import Path
from typing import Optional, Union

from repro.trace.packed import PackedTrace
from repro.trace.record import TraceStream


def truncate_packed(packed: PackedTrace, num_requests: int) -> PackedTrace:
    """The first ``num_requests`` records of ``packed``, spread across its
    threads proportionally.

    Each stored thread keeps a prefix of its segment: ``floor`` of its
    proportional share, with the remaining records granted one each to the
    earliest stored threads that still have spare records.  Deterministic --
    the result depends only on the input trace and the count -- and exact:
    the truncated trace holds precisely ``num_requests`` records whenever
    ``num_requests <= len(packed)``.
    """
    total = packed.total_requests
    if num_requests >= total:
        return packed
    if num_requests < 1:
        raise ValueError(f"request count must be >= 1, got {num_requests}")
    segments = [(start, stop) for _t, _c, start, stop in packed.thread_segments()]
    keep = [(stop - start) * num_requests // total for start, stop in segments]
    shortfall = num_requests - sum(keep)
    for index, (start, stop) in enumerate(segments):
        if shortfall == 0:
            break
        if keep[index] < stop - start:
            keep[index] += 1
            shortfall -= 1
    thread_ids = array("q")
    offsets = array("q", [0])
    meta = array("Q")
    addresses = array("Q")
    gaps = array("d")
    for thread_id, (start, _stop), count in zip(
        packed.thread_ids, segments, keep
    ):
        if count == 0:
            continue
        thread_ids.append(thread_id)
        offsets.append(offsets[-1] + count)
        meta.extend(packed.meta[start:start + count])
        addresses.extend(packed.addresses[start:start + count])
        gaps.extend(packed.gaps[start:start + count])
    return PackedTrace(
        name=packed.name,
        num_clusters=packed.num_clusters,
        threads_per_cluster=packed.threads_per_cluster,
        thread_ids=thread_ids,
        offsets=offsets,
        meta=meta,
        addresses=addresses,
        gaps=gaps,
        description=packed.description,
    )


class TraceFileWorkload:
    """A trace file (text or packed binary) wrapped as a harness workload.

    Parameters
    ----------
    path:
        Trace file in either on-disk format (sniffed by magic bytes).
    name:
        Workload name in traces and reports; defaults to the name stored in
        the file.  Two files storing the same name need distinct ``name``
        params to coexist in one scenario.
    window:
        Per-thread outstanding-miss window during replay (the replay knob an
        external trace cannot carry itself).
    """

    __slots__ = ("path", "window", "name", "_metadata", "_packed")

    #: ``window`` only shapes the replay, never the loaded trace, so the
    #: sweep engine's trace cache ignores it when keying signatures.
    replay_only_params = ("window",)

    def __init__(
        self,
        path: Union[str, Path],
        name: Optional[str] = None,
        window: int = 4,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.path = Path(path)
        self.window = window
        # Construction reads only the header (cheap even for huge traces;
        # sweep engines build a fresh workload per grid point): the columns
        # load lazily on first generate.  ValueError keeps failures inside
        # the workload-factory error contract, so a bad path in a scenario
        # file is reported with its field path instead of a raw traceback.
        from repro.trace.io import read_trace_metadata  # deferred: io imports packed

        try:
            self._metadata = read_trace_metadata(self.path)
        except OSError as exc:
            raise ValueError(f"cannot read trace file: {exc}") from None
        self._packed: Optional[PackedTrace] = None
        self.name = name if name is not None else self._metadata["name"]

    def _load(self) -> PackedTrace:
        if self._packed is None:
            from repro.trace.io import read_trace_packed

            try:
                self._packed = read_trace_packed(self.path)
            except OSError as exc:
                raise ValueError(f"cannot read trace file: {exc}") from None
        return self._packed

    @property
    def is_synthetic(self) -> bool:
        return False

    @property
    def num_clusters(self) -> int:
        return self._metadata["num_clusters"]

    @property
    def threads_per_cluster(self) -> int:
        return self._metadata["threads_per_cluster"]

    @property
    def fixed_requests(self) -> int:
        """The file's record count -- the matrices replay exactly this many
        requests unless the workload spec caps ``num_requests`` lower.
        Header-only for binary traces; text files need one full load."""
        if self._metadata["num_records"] is not None:
            return self._metadata["num_records"]
        return self._load().total_requests

    def generate_packed(
        self, seed: int = 1, num_requests: Optional[int] = None
    ) -> PackedTrace:
        """The file's packed trace (``seed`` is ignored -- fixed data).

        ``num_requests`` below the file's record count truncates
        deterministically (see :func:`truncate_packed`); larger counts clamp
        to the file -- a trace file cannot invent records.
        """
        del seed
        packed = self._load()
        if num_requests is not None and num_requests < packed.total_requests:
            packed = truncate_packed(packed, num_requests)
        if self.name != packed.name:
            packed = PackedTrace(
                name=self.name,
                num_clusters=packed.num_clusters,
                threads_per_cluster=packed.threads_per_cluster,
                thread_ids=packed.thread_ids,
                offsets=packed.offsets,
                meta=packed.meta,
                addresses=packed.addresses,
                gaps=packed.gaps,
                description=packed.description,
            )
        return packed

    def generate(
        self, seed: int = 1, num_requests: Optional[int] = None
    ) -> TraceStream:
        """The trace as record objects (same truncation rules)."""
        return self.generate_packed(seed=seed, num_requests=num_requests).to_stream()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceFileWorkload({str(self.path)!r}, name={self.name!r}, "
            f"records={self.fixed_requests})"
        )


def trace_file_workload(
    path: Union[str, Path],
    name: Optional[str] = None,
    window: int = 4,
) -> TraceFileWorkload:
    """Factory behind the ``trace-file`` workload-registry entry."""
    return TraceFileWorkload(path=path, name=name, window=window)
