"""Address-level workload generators.

The statistical SPLASH-2 models in :mod:`repro.trace.splash2` synthesize the
L2-*miss* stream directly, which is what the paper's network study consumes.
This module provides the complementary path: generate raw per-thread
*address* streams (strided array sweeps, random pointer chasing, hot shared
structures), run them through the functional cache hierarchy of
:mod:`repro.cache.hierarchy`, and obtain a miss trace whose rate and locality
come from actual cache behaviour rather than from calibrated parameters.  It
is slower, so it is used by examples and tests rather than by the main
harness, and it is the integration point for anyone who wants to drive the
replay engine from a real address trace.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.cache.hierarchy import CacheHierarchy
from repro.trace.record import TraceStream


class AccessPattern(enum.Enum):
    """Per-thread address-stream shapes."""

    #: Sequential sweep over a private array (streaming, low reuse).
    STREAMING = "streaming"
    #: Repeated sweep over a small private working set (high reuse).
    RESIDENT = "resident"
    #: Uniform random accesses over a large shared region (pointer chasing).
    RANDOM_SHARED = "random_shared"
    #: Mostly-private accesses with occasional touches of a hot shared block.
    PRODUCER_CONSUMER = "producer_consumer"


@dataclass
class AddressWorkload:
    """A synthetic address-level workload.

    Parameters
    ----------
    name:
        Label used for the resulting trace.
    pattern:
        Per-thread address-stream shape.
    accesses_per_thread:
        Raw memory accesses issued by each hardware thread.
    working_set_bytes:
        Size of each thread's private region (STREAMING / RESIDENT) or of the
        shared region (RANDOM_SHARED).
    write_fraction:
        Fraction of accesses that are stores.
    mean_gap_cycles:
        Compute cycles between consecutive accesses of a thread; carried onto
        the miss records (misses inherit the gaps accumulated since the
        previous miss).
    shared_fraction:
        For PRODUCER_CONSUMER: fraction of accesses that touch the hot shared
        block.
    """

    name: str
    pattern: AccessPattern
    accesses_per_thread: int = 2000
    working_set_bytes: int = 1 << 20
    write_fraction: float = 0.3
    mean_gap_cycles: float = 4.0
    shared_fraction: float = 0.05
    num_clusters: int = 64
    threads_per_cluster: int = 16
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.accesses_per_thread < 1:
            raise ValueError("each thread needs at least one access")
        if self.working_set_bytes < self.line_bytes:
            raise ValueError("working set must hold at least one line")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write fraction must be in [0, 1]")

    # -- address generation -----------------------------------------------------
    def _thread_base(self, thread_id: int) -> int:
        """Base address of a thread's private region (1 GB-aligned regions)."""
        return (thread_id + 1) << 30

    def _addresses(self, thread_id: int, rng: random.Random) -> Iterator[int]:
        base = self._thread_base(thread_id)
        lines_in_set = max(self.working_set_bytes // self.line_bytes, 1)
        if self.pattern is AccessPattern.STREAMING:
            for i in range(self.accesses_per_thread):
                yield base + (i % lines_in_set) * self.line_bytes
        elif self.pattern is AccessPattern.RESIDENT:
            resident_lines = max(lines_in_set // 16, 1)
            for i in range(self.accesses_per_thread):
                yield base + (i % resident_lines) * self.line_bytes
        elif self.pattern is AccessPattern.RANDOM_SHARED:
            shared_base = 1 << 40
            for _ in range(self.accesses_per_thread):
                line = rng.randrange(lines_in_set)
                yield shared_base + line * self.line_bytes
        elif self.pattern is AccessPattern.PRODUCER_CONSUMER:
            hot_base = 1 << 41
            hot_lines = 64
            for i in range(self.accesses_per_thread):
                if rng.random() < self.shared_fraction:
                    yield hot_base + rng.randrange(hot_lines) * self.line_bytes
                else:
                    yield base + (i % lines_in_set) * self.line_bytes
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown pattern {self.pattern}")

    # -- trace generation ----------------------------------------------------------
    def generate(
        self,
        seed: int = 1,
        clusters: Optional[int] = None,
        hierarchy_kwargs: Optional[Dict] = None,
    ) -> Tuple[TraceStream, List[CacheHierarchy]]:
        """Run the address streams through per-cluster cache hierarchies.

        Returns the L2-miss :class:`TraceStream` (ready for the replay engine)
        and the hierarchies themselves (so callers can inspect miss rates).
        Only the first ``clusters`` clusters are populated when given, which
        keeps tests and examples fast.
        """
        rng = random.Random(seed)
        populated = clusters if clusters is not None else self.num_clusters
        if not 1 <= populated <= self.num_clusters:
            raise ValueError(
                f"clusters must be in [1, {self.num_clusters}], got {populated}"
            )
        hierarchy_kwargs = dict(hierarchy_kwargs or {})
        hierarchy_kwargs.setdefault("num_clusters", self.num_clusters)

        stream = TraceStream(
            name=self.name,
            num_clusters=self.num_clusters,
            threads_per_cluster=self.threads_per_cluster,
            description=f"address-level {self.pattern.value} workload",
        )
        hierarchies: List[CacheHierarchy] = []
        cores_per_cluster = 4
        threads_per_core = self.threads_per_cluster // cores_per_cluster

        for cluster in range(populated):
            hierarchy = CacheHierarchy(cluster_id=cluster, **hierarchy_kwargs)
            hierarchies.append(hierarchy)
            for local_thread in range(self.threads_per_cluster):
                thread_id = cluster * self.threads_per_cluster + local_thread
                core = local_thread // max(threads_per_core, 1)
                core = min(core, cores_per_cluster - 1)
                pending_gap = 0.0
                for address in self._addresses(thread_id, rng):
                    pending_gap += rng.expovariate(1.0 / self.mean_gap_cycles) \
                        if self.mean_gap_cycles > 0 else 0.0
                    is_write = rng.random() < self.write_fraction
                    result = hierarchy.access(
                        core=core,
                        thread_id=thread_id,
                        address=address,
                        is_write=is_write,
                        gap_cycles=pending_gap,
                    )
                    if result.l2_miss_generated:
                        pending_gap = 0.0
            for record in hierarchy.l2_misses:
                stream.add(record)
            hierarchy.l2_misses.clear()
        return stream, hierarchies


@dataclass
class AddressTraceWorkload:
    """An :class:`AddressWorkload` adapted to the harness workload protocol.

    The harness protocol (``name``/``window``/``generate(seed,
    num_requests)``) is what the registries, matrices and the sweep engine
    speak; the native :meth:`AddressWorkload.generate` signature predates
    it.  ``num_requests`` bounds the *raw accesses* driven through the
    functional cache hierarchy (spread evenly over the threads); the
    emitted trace is the resulting L2-miss stream, truncated to the bound
    -- so the record count reflects actual cache behaviour, like a
    trace-file workload's count reflects its file.
    """

    workload: AddressWorkload
    window: int = 4

    #: ``window`` only shapes the replay, so trace caches ignore it.
    replay_only_params = ("window",)
    #: Scaled by the tier's synthetic request budget, like the pattern
    #: workloads (there is no SPLASH-2 profile to scale from).
    is_synthetic = True

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")

    @property
    def name(self) -> str:
        return self.workload.name

    def generate(
        self, seed: int = 1, num_requests: Optional[int] = None
    ) -> TraceStream:
        base = self.workload
        if num_requests is not None:
            total_threads = base.num_clusters * base.threads_per_cluster
            per_thread = max(1, -(-int(num_requests) // total_threads))
            if per_thread != base.accesses_per_thread:
                from dataclasses import replace

                base = replace(base, accesses_per_thread=per_thread)
        stream, _hierarchies = base.generate(seed=seed)
        if num_requests is not None and stream.total_requests > num_requests:
            truncated = TraceStream(
                name=stream.name,
                num_clusters=stream.num_clusters,
                threads_per_cluster=stream.threads_per_cluster,
                description=stream.description,
            )
            remaining = int(num_requests)
            for record in stream.all_records():
                if remaining == 0:
                    break
                truncated.add(record)
                remaining -= 1
            stream = truncated
        return stream


_ADDRESS_FACTORIES = {}


def registered_address_workload(kind: str, window: int = 4, **overrides):
    """Factory behind the ``addr-*`` workload-registry entries."""
    try:
        factory = _ADDRESS_FACTORIES[kind]
    except KeyError:
        raise ValueError(
            f"unknown address workload kind {kind!r}; "
            f"known: {sorted(_ADDRESS_FACTORIES)}"
        ) from None
    return AddressTraceWorkload(workload=factory(**overrides), window=window)


def streaming_workload(**overrides) -> AddressWorkload:
    """A streaming array sweep: every access is a compulsory-ish miss."""
    params = dict(
        name="AddressStreaming",
        pattern=AccessPattern.STREAMING,
        working_set_bytes=8 << 20,
        mean_gap_cycles=4.0,
    )
    params.update(overrides)
    return AddressWorkload(**params)


def resident_workload(**overrides) -> AddressWorkload:
    """A cache-resident working set: almost everything hits in the L1/L2."""
    params = dict(
        name="AddressResident",
        pattern=AccessPattern.RESIDENT,
        working_set_bytes=256 << 10,
        mean_gap_cycles=4.0,
    )
    params.update(overrides)
    return AddressWorkload(**params)


def random_shared_workload(**overrides) -> AddressWorkload:
    """Random accesses over a large shared region: high, uniform miss traffic."""
    params = dict(
        name="AddressRandomShared",
        pattern=AccessPattern.RANDOM_SHARED,
        working_set_bytes=64 << 20,
        mean_gap_cycles=8.0,
    )
    params.update(overrides)
    return AddressWorkload(**params)


_ADDRESS_FACTORIES.update(
    {
        "streaming": streaming_workload,
        "resident": resident_workload,
        "random-shared": random_shared_workload,
    }
)
