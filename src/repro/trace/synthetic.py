"""Synthetic traffic patterns (Table 3 of the Corona paper).

The paper stresses the interconnects with four classic patterns, each issuing
1 M network requests across the 64 clusters (8x8 logical grid):

* **Uniform** -- each request targets a uniformly random cluster.
* **Hot Spot** -- every cluster targets a single cluster, so one memory
  controller and one crossbar channel (or the mesh links feeding it) become
  the bottleneck.
* **Tornado** -- cluster ``(i, j)`` targets
  ``((i + k/2 - 1) % k, (j + k/2 - 1) % k)`` where ``k`` is the network radix;
  an adversarial pattern for meshes/tori because all traffic travels nearly
  half way across the network.
* **Transpose** -- cluster ``(i, j)`` targets ``(j, i)``, the classic matrix
  transpose permutation that concentrates traffic on the mesh diagonal.

Two further classic patterns extend the paper's set:

* **Bit Reversal** -- cluster ``b_{n-1} ... b_1 b_0`` targets
  ``b_0 b_1 ... b_{n-1}`` (FFT-style communication); like Transpose it is a
  fixed permutation that loads specific mesh paths.
* **Neighbor** -- cluster ``i`` targets ``(i + 1) mod N``, a
  producer-consumer pipeline with minimal mesh distance; the gentlest
  pattern, useful as a low-contention control.

Each pattern is wrapped in a :class:`SyntheticWorkload` that produces a
:class:`~repro.trace.record.TraceStream` with per-thread gaps drawn from an
exponential distribution, so the offered load is tunable with one intensity
parameter.  A :class:`~repro.coherence.sharing.SharingProfile` additionally
tags a configurable fraction of misses as *shared* lines, which is what the
coherence-enabled replay (:mod:`repro.coherence`) consumes.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.coherence.sharing import (
    SharingProfile,
    default_sharing_profile,
    home_for_line,
    resolve_sharing,
    shared_line_address,
)
from repro.trace.arrival import ArrivalSpec, arrival_streams
from repro.trace.gaps import draw_gap
from repro.trace.packed import PackedTrace, PackedTraceBuilder
from repro.trace.record import AccessKind, TraceRecord, TraceStream

#: Default request count from Table 3 of the paper.
PAPER_SYNTHETIC_REQUESTS = 1_000_000


class SyntheticPattern(enum.Enum):
    """The paper's four destination permutations plus two classic extensions."""

    UNIFORM = "uniform"
    HOT_SPOT = "hot_spot"
    TORNADO = "tornado"
    TRANSPOSE = "transpose"
    BIT_REVERSAL = "bit_reversal"
    NEIGHBOR = "neighbor"


def _grid_radix(num_clusters: int) -> int:
    radix = int(round(math.sqrt(num_clusters)))
    if radix * radix != num_clusters:
        raise ValueError(
            f"synthetic patterns need a square cluster count, got {num_clusters}"
        )
    return radix


def _cluster_to_xy(cluster: int, radix: int) -> tuple[int, int]:
    return cluster % radix, cluster // radix


def _xy_to_cluster(x: int, y: int, radix: int) -> int:
    return y * radix + x


def tornado_destination(cluster: int, num_clusters: int) -> int:
    """Tornado permutation destination of ``cluster``."""
    radix = _grid_radix(num_clusters)
    x, y = _cluster_to_xy(cluster, radix)
    shift = radix // 2 - 1
    return _xy_to_cluster((x + shift) % radix, (y + shift) % radix, radix)


def transpose_destination(cluster: int, num_clusters: int) -> int:
    """Transpose permutation destination of ``cluster``."""
    radix = _grid_radix(num_clusters)
    x, y = _cluster_to_xy(cluster, radix)
    return _xy_to_cluster(y, x, radix)


def bit_reversal_destination(cluster: int, num_clusters: int) -> int:
    """Bit-reversal permutation destination of ``cluster``.

    Reverses the ``log2(num_clusters)`` address bits of the cluster id; the
    cluster count must be a power of two.
    """
    bits = num_clusters.bit_length() - 1
    if 1 << bits != num_clusters:
        raise ValueError(
            f"bit reversal needs a power-of-two cluster count, got {num_clusters}"
        )
    reversed_id = 0
    for bit in range(bits):
        reversed_id = (reversed_id << 1) | ((cluster >> bit) & 1)
    return reversed_id


def neighbor_destination(cluster: int, num_clusters: int) -> int:
    """Neighbor (producer-consumer) destination: the next cluster id."""
    return (cluster + 1) % num_clusters


@dataclass
class SyntheticWorkload:
    """A synthetic traffic workload.

    Parameters
    ----------
    name:
        Workload name as it appears in the paper's figures.
    pattern:
        Destination permutation.
    num_requests:
        Total L2 misses across all threads (paper: 1 M).
    num_clusters, threads_per_cluster:
        System shape; 64 clusters x 16 threads = 1024 threads by default.
    mean_gap_cycles:
        Mean compute gap between consecutive misses of one thread, in 5 GHz
        core cycles.  Small gaps mean high offered load.
    write_fraction:
        Fraction of misses that are writes.
    window:
        Maximum outstanding misses per thread during replay (memory-level
        parallelism the in-order multithreaded core can sustain).
    hot_cluster:
        Destination cluster for the Hot Spot pattern.
    sharing:
        Optional :class:`~repro.coherence.sharing.SharingProfile`; when set
        (with a non-zero fraction), that fraction of misses targets a global
        pool of shared lines tagged for the coherence-enabled replay.  With
        no profile (or fraction 0) generation is bit-identical to the
        sharing-free path.
    arrival:
        Optional :class:`~repro.trace.arrival.ArrivalSpec` (or its dict
        form).  When enabled, gaps come from the open-loop arrival process
        instead of the closed-loop gamma think model; ``None`` or a
        ``"closed"`` process keeps generation bit-identical to before.
    """

    name: str
    pattern: SyntheticPattern
    num_requests: int = PAPER_SYNTHETIC_REQUESTS
    num_clusters: int = 64
    threads_per_cluster: int = 16
    mean_gap_cycles: float = 40.0
    write_fraction: float = 0.3
    window: int = 8
    hot_cluster: int = 0
    sharing: Optional[Union[str, SharingProfile]] = None
    arrival: Optional[Union[dict, ArrivalSpec]] = None
    description: str = ""

    def __post_init__(self) -> None:
        self.sharing = resolve_sharing(self.sharing, default_sharing_profile)
        if isinstance(self.arrival, dict):
            self.arrival = ArrivalSpec.from_dict(self.arrival)
        if self.num_requests < 1:
            raise ValueError(
                f"request count must be >= 1, got {self.num_requests}"
            )
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError(
                f"write fraction must be in [0, 1], got {self.write_fraction}"
            )
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.mean_gap_cycles < 0:
            raise ValueError(
                f"mean gap must be non-negative, got {self.mean_gap_cycles}"
            )

    #: Params that only shape the replay, never the generated trace (the
    #: sweep engine's trace cache ignores them when keying signatures).
    replay_only_params = ("window",)

    @property
    def is_synthetic(self) -> bool:
        return True

    def destination(self, cluster: int, rng: random.Random) -> int:
        """Home cluster for a request issued by ``cluster``."""
        if self.pattern is SyntheticPattern.UNIFORM:
            return rng.randrange(self.num_clusters)
        if self.pattern is SyntheticPattern.HOT_SPOT:
            return self.hot_cluster
        if self.pattern is SyntheticPattern.TORNADO:
            return tornado_destination(cluster, self.num_clusters)
        if self.pattern is SyntheticPattern.TRANSPOSE:
            return transpose_destination(cluster, self.num_clusters)
        if self.pattern is SyntheticPattern.BIT_REVERSAL:
            return bit_reversal_destination(cluster, self.num_clusters)
        if self.pattern is SyntheticPattern.NEIGHBOR:
            return neighbor_destination(cluster, self.num_clusters)
        raise ValueError(f"unknown pattern {self.pattern}")

    def _emit_records(self, emit, seed: int, total: int) -> None:
        """Drive the generation loop, calling
        ``emit(thread_id, cluster, home, is_write, address, gap, shared)``
        once per record.

        The single loop behind both trace representations: the rng draw
        sequence depends only on the workload parameters and ``seed``, so
        :meth:`generate` and :meth:`generate_packed` produce field-identical
        records.
        """
        rng = random.Random(seed)
        total_threads = self.num_clusters * self.threads_per_cluster
        base, remainder = divmod(total, total_threads)
        # Threads of a real application are mid-execution when a trace window
        # opens; staggering their first miss avoids an artificial thundering
        # herd at t = 0 that no steady-state system would see.
        stagger_cycles = 8.0 * self.mean_gap_cycles
        # Open-loop arrivals replace every gap draw (including the stagger:
        # the process defines the full schedule from t = 0) with draws from
        # a dedicated rng, leaving the main rng's destination/write/sharing
        # sequence untouched by rate changes.
        arrivals = arrival_streams(self.arrival, total_threads, seed)
        # Sharing support: when a profile with a non-zero fraction is set,
        # that fraction of misses targets the shared-line pool instead of the
        # pattern's private address space.  The sharing-free path below stays
        # byte-for-byte identical (same rng draw sequence) so existing traces
        # and results are unchanged.
        sharing = self.sharing if self.sharing and self.sharing.enabled else None
        shared_cumulative = sharing.cumulative_weights() if sharing else None
        line_counter = 0
        for thread_id in range(total_threads):
            cluster = thread_id // self.threads_per_cluster
            count = base + (1 if thread_id < remainder else 0)
            thread_arrivals = next(arrivals) if arrivals is not None else None
            for index in range(count):
                if thread_arrivals is not None:
                    gap = thread_arrivals.next_gap()
                else:
                    gap = draw_gap(rng, self.mean_gap_cycles)
                    if index == 0 and stagger_cycles > 0:
                        gap += rng.uniform(0.0, stagger_cycles)
                if sharing is not None and rng.random() < sharing.fraction:
                    line = sharing.draw_line(rng, shared_cumulative)
                    home = home_for_line(line, self.num_clusters)
                    address = shared_line_address(line, self.num_clusters)
                    is_write = rng.random() < sharing.write_fraction
                    shared = True
                else:
                    is_write = rng.random() < self.write_fraction
                    home = self.destination(cluster, rng)
                    # Synthesize an address in the home cluster's region so
                    # the cache/coherence substrate can consume the same
                    # traces.
                    address = (home << 26) | ((line_counter & 0xFFFFF) << 6)
                    line_counter += 1
                    shared = False
                emit(thread_id, cluster, home, is_write, address, gap, shared)

    def generate(
        self, seed: int = 1, num_requests: Optional[int] = None
    ) -> TraceStream:
        """Generate the trace as a :class:`TraceStream` of record objects.

        ``num_requests`` overrides the configured total, which is how the
        harness scales the paper's 1 M-request runs down to something a pure
        Python replay can finish quickly.
        """
        total = num_requests if num_requests is not None else self.num_requests
        stream = TraceStream(
            name=self.name,
            num_clusters=self.num_clusters,
            threads_per_cluster=self.threads_per_cluster,
            description=self.description or f"synthetic {self.pattern.value}",
        )
        add = stream.add

        def emit(thread_id, cluster, home, is_write, address, gap, shared):
            add(
                TraceRecord(
                    thread_id=thread_id,
                    cluster_id=cluster,
                    home_cluster=home,
                    kind=AccessKind.WRITE if is_write else AccessKind.READ,
                    address=address,
                    gap_cycles=gap,
                    shared=shared,
                )
            )

        self._emit_records(emit, seed, total)
        return stream

    def generate_packed(
        self, seed: int = 1, num_requests: Optional[int] = None
    ) -> PackedTrace:
        """Generate the trace directly in packed columnar form.

        Streams records chunk-wise into the packed columns (three array
        appends per miss, no :class:`TraceRecord` objects), which is what
        makes paper-scale request counts practical.  Field-identical to
        :meth:`generate` for the same seed.
        """
        total = num_requests if num_requests is not None else self.num_requests
        arrival = self.arrival if self.arrival and self.arrival.enabled else None
        builder = PackedTraceBuilder(
            name=self.name,
            num_clusters=self.num_clusters,
            threads_per_cluster=self.threads_per_cluster,
            description=self.description or f"synthetic {self.pattern.value}",
            arrival_process=arrival.process if arrival else "closed",
            offered_rps=arrival.offered_rps() if arrival else 0.0,
        )
        append = builder.append

        def emit(thread_id, _cluster, home, is_write, address, gap, shared):
            append(thread_id, home, is_write, shared, address, gap)

        self._emit_records(emit, seed, total)
        return builder.build()


def uniform_workload(**overrides) -> SyntheticWorkload:
    """The Uniform random pattern (Table 3)."""
    params: Dict = dict(
        name="Uniform",
        pattern=SyntheticPattern.UNIFORM,
        mean_gap_cycles=40.0,
        description="Uniform random destinations, 1 M requests",
    )
    params.update(overrides)
    return SyntheticWorkload(**params)


def hot_spot_workload(**overrides) -> SyntheticWorkload:
    """The Hot Spot pattern: all clusters target one cluster (Table 3)."""
    params: Dict = dict(
        name="Hot Spot",
        pattern=SyntheticPattern.HOT_SPOT,
        mean_gap_cycles=40.0,
        description="All clusters to one cluster, 1 M requests",
    )
    params.update(overrides)
    return SyntheticWorkload(**params)


def tornado_workload(**overrides) -> SyntheticWorkload:
    """The Tornado adversarial permutation (Table 3)."""
    params: Dict = dict(
        name="Tornado",
        pattern=SyntheticPattern.TORNADO,
        mean_gap_cycles=40.0,
        description="Tornado permutation, 1 M requests",
    )
    params.update(overrides)
    return SyntheticWorkload(**params)


def transpose_workload(**overrides) -> SyntheticWorkload:
    """The Transpose permutation (Table 3)."""
    params: Dict = dict(
        name="Transpose",
        pattern=SyntheticPattern.TRANSPOSE,
        mean_gap_cycles=40.0,
        description="Transpose permutation, 1 M requests",
    )
    params.update(overrides)
    return SyntheticWorkload(**params)


def bit_reversal_workload(**overrides) -> SyntheticWorkload:
    """The Bit Reversal (FFT-style) permutation."""
    params: Dict = dict(
        name="Bit Reversal",
        pattern=SyntheticPattern.BIT_REVERSAL,
        mean_gap_cycles=40.0,
        description="Bit-reversal permutation, 1 M requests",
    )
    params.update(overrides)
    return SyntheticWorkload(**params)


def neighbor_workload(**overrides) -> SyntheticWorkload:
    """The Neighbor (producer-consumer) pattern."""
    params: Dict = dict(
        name="Neighbor",
        pattern=SyntheticPattern.NEIGHBOR,
        mean_gap_cycles=40.0,
        description="Producer-consumer neighbor pattern, 1 M requests",
    )
    params.update(overrides)
    return SyntheticWorkload(**params)


#: Factory per pattern, for name-based construction (the Scenario API's
#: workload registry seeds itself from this table).
_PATTERN_FACTORIES: Dict[SyntheticPattern, "object"] = {}


def synthetic_workload(pattern: str, **overrides) -> SyntheticWorkload:
    """Build a synthetic workload by pattern name (e.g. ``"uniform"``).

    ``pattern`` accepts the :class:`SyntheticPattern` values; ``overrides``
    are :class:`SyntheticWorkload` fields (``mean_gap_cycles``, ``sharing``,
    ``name``...).
    """
    try:
        key = SyntheticPattern(pattern.lower().replace(" ", "_"))
    except ValueError:
        known = [p.value for p in SyntheticPattern]
        raise ValueError(
            f"unknown synthetic pattern {pattern!r}; known: {known}"
        ) from None
    return _PATTERN_FACTORIES[key](**overrides)


def synthetic_workloads(**overrides) -> List[SyntheticWorkload]:
    """All synthetic workloads: the paper's four (in its plot order)
    followed by the Bit Reversal and Neighbor extensions."""
    return [
        uniform_workload(**overrides),
        hot_spot_workload(**overrides),
        tornado_workload(**overrides),
        transpose_workload(**overrides),
        bit_reversal_workload(**overrides),
        neighbor_workload(**overrides),
    ]


_PATTERN_FACTORIES.update(
    {
        SyntheticPattern.UNIFORM: uniform_workload,
        SyntheticPattern.HOT_SPOT: hot_spot_workload,
        SyntheticPattern.TORNADO: tornado_workload,
        SyntheticPattern.TRANSPOSE: transpose_workload,
        SyntheticPattern.BIT_REVERSAL: bit_reversal_workload,
        SyntheticPattern.NEIGHBOR: neighbor_workload,
    }
)
