"""Trace serialization.

Traces are stored as plain text with one header line and one line per record:

.. code-block:: text

    # corona-trace v1 name=<name> clusters=<n> threads_per_cluster=<m>
    <thread_id> <home_cluster> <R|W> <address-hex> <gap_cycles> <size_bytes> [S]

The format is deliberately simple: it is diffable, compresses well, and can be
produced by an external full-system simulator if real SPLASH-2 traces become
available, in which case they drop straight into the replay engine.  A
trailing ``S`` marks the record as a shared line for coherence-enabled
replays; records without it (including every pre-existing trace file) are
private.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.trace.record import AccessKind, TraceRecord, TraceStream

_HEADER_PREFIX = "# corona-trace v1"


def write_trace(stream: TraceStream, path: Union[str, Path]) -> None:
    """Write ``stream`` to ``path`` in the corona-trace v1 format."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(
            f"{_HEADER_PREFIX} name={stream.name!r} "
            f"clusters={stream.num_clusters} "
            f"threads_per_cluster={stream.threads_per_cluster}\n"
        )
        for record in stream.all_records():
            shared = " S" if record.shared else ""
            handle.write(
                f"{record.thread_id} {record.home_cluster} {record.kind.value} "
                f"{record.address:x} {record.gap_cycles:.4f} {record.size_bytes}"
                f"{shared}\n"
            )


def _parse_header(line: str) -> dict:
    if not line.startswith(_HEADER_PREFIX):
        raise ValueError(
            f"not a corona-trace v1 file (header is {line[:40]!r}...)"
        )
    fields = {}
    for token in line[len(_HEADER_PREFIX):].split():
        if "=" not in token:
            continue
        key, value = token.split("=", 1)
        fields[key] = value
    required = {"name", "clusters", "threads_per_cluster"}
    missing = required - set(fields)
    if missing:
        raise ValueError(f"trace header missing fields: {sorted(missing)}")
    return fields


def read_trace(path: Union[str, Path]) -> TraceStream:
    """Read a corona-trace v1 file back into a :class:`TraceStream`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header = handle.readline().rstrip("\n")
        fields = _parse_header(header)
        name = fields["name"].strip("'\"")
        num_clusters = int(fields["clusters"])
        threads_per_cluster = int(fields["threads_per_cluster"])
        stream = TraceStream(
            name=name,
            num_clusters=num_clusters,
            threads_per_cluster=threads_per_cluster,
        )
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (6, 7):
                raise ValueError(
                    f"{path}:{line_number}: expected 6 or 7 fields, got {len(parts)}"
                )
            if len(parts) == 7 and parts[6] != "S":
                raise ValueError(
                    f"{path}:{line_number}: unknown record flag {parts[6]!r}"
                )
            thread_id = int(parts[0])
            home_cluster = int(parts[1])
            kind = AccessKind.from_code(parts[2])
            address = int(parts[3], 16)
            gap_cycles = float(parts[4])
            size_bytes = int(parts[5])
            cluster = thread_id // threads_per_cluster
            stream.add(
                TraceRecord(
                    thread_id=thread_id,
                    cluster_id=cluster,
                    home_cluster=home_cluster,
                    kind=kind,
                    address=address,
                    gap_cycles=gap_cycles,
                    size_bytes=size_bytes,
                    shared=len(parts) == 7,
                )
            )
    stream.validate()
    return stream
