"""Trace serialization: diffable text and packed binary formats.

**Text (corona-trace v1)** stores one header line and one line per record:

.. code-block:: text

    # corona-trace v1 name=<name> clusters=<n> threads_per_cluster=<m>
    <thread_id> <home_cluster> <R|W> <address-hex> <gap_cycles> <size_bytes> [S]

The format is deliberately simple: it is diffable, compresses well, and can be
produced by an external full-system simulator if real SPLASH-2 traces become
available, in which case they drop straight into the replay engine.  A
trailing ``S`` marks the record as a shared line for coherence-enabled
replays; records without it (including every pre-existing trace file) are
private.  Note that the text format rounds gaps to 4 decimals.

**Binary (corona-trace bin2)** stores the :class:`~repro.trace.packed.
PackedTrace` columns verbatim (little-endian, 24 bytes per record): a magic
line, a fixed-size shape header, the name/description strings, then the five
columns back to back.  It round-trips every field exactly -- including the
shared-``S`` flag and full float64 gaps -- and loads without per-record
parsing, which is what makes paper-scale trace files practical.
:func:`read_trace` sniffs the magic bytes and accepts either format.
"""

from __future__ import annotations

import re
import struct
import sys
from array import array
from pathlib import Path
from typing import Union

from repro.trace.packed import KIND_BIT, AnyTrace, PackedTrace, as_packed
from repro.trace.record import AccessKind, TraceRecord, TraceStream

_HEADER_PREFIX = "# corona-trace v1"

_BINARY_MAGIC = b"# corona-trace bin2\n"
#: Shape header that follows the magic: clusters, threads_per_cluster,
#: thread count, record count, name length, description length.
_BINARY_HEADER = struct.Struct("<IIQQII")


def write_trace(stream: AnyTrace, path: Union[str, Path]) -> None:
    """Write a trace to ``path`` in the corona-trace v1 text format."""
    if isinstance(stream, PackedTrace):
        stream = stream.to_stream()
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(
            f"{_HEADER_PREFIX} name={stream.name!r} "
            f"clusters={stream.num_clusters} "
            f"threads_per_cluster={stream.threads_per_cluster}\n"
        )
        for record in stream.all_records():
            shared = " S" if record.shared else ""
            handle.write(
                f"{record.thread_id} {record.home_cluster} {record.kind.value} "
                f"{record.address:x} {record.gap_cycles:.4f} {record.size_bytes}"
                f"{shared}\n"
            )


#: ``key=value`` header tokens; quoted values may contain spaces (the name
#: is written with ``!r``, so e.g. ``name='Uniform s=0.3'`` is one token).
_HEADER_TOKEN = re.compile(r"(\w+)=('[^']*'|\"[^\"]*\"|\S+)")


def _parse_header(line: str) -> dict:
    if not line.startswith(_HEADER_PREFIX):
        raise ValueError(
            f"not a corona-trace v1 file (header is {line[:40]!r}...)"
        )
    fields = {}
    for key, value in _HEADER_TOKEN.findall(line[len(_HEADER_PREFIX):]):
        fields[key] = value
    required = {"name", "clusters", "threads_per_cluster"}
    missing = required - set(fields)
    if missing:
        raise ValueError(f"trace header missing fields: {sorted(missing)}")
    return fields


def read_trace(path: Union[str, Path]) -> TraceStream:
    """Read a trace file (either format) back into a :class:`TraceStream`.

    The binary format is detected by its magic bytes; use
    :func:`read_trace_binary` directly to keep the packed representation.
    """
    path = Path(path)
    with path.open("rb") as probe:
        is_binary = probe.read(len(_BINARY_MAGIC)) == _BINARY_MAGIC
    if is_binary:
        return read_trace_binary(path).to_stream()
    with path.open("r", encoding="utf-8") as handle:
        header = handle.readline().rstrip("\n")
        fields = _parse_header(header)
        name = fields["name"].strip("'\"")
        num_clusters = int(fields["clusters"])
        threads_per_cluster = int(fields["threads_per_cluster"])
        stream = TraceStream(
            name=name,
            num_clusters=num_clusters,
            threads_per_cluster=threads_per_cluster,
        )
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (6, 7):
                raise ValueError(
                    f"{path}:{line_number}: expected 6 or 7 fields, got {len(parts)}"
                )
            if len(parts) == 7 and parts[6] != "S":
                raise ValueError(
                    f"{path}:{line_number}: unknown record flag {parts[6]!r}"
                )
            thread_id = int(parts[0])
            home_cluster = int(parts[1])
            kind = AccessKind.from_code(parts[2])
            address = int(parts[3], 16)
            gap_cycles = float(parts[4])
            size_bytes = int(parts[5])
            cluster = thread_id // threads_per_cluster
            stream.add(
                TraceRecord(
                    thread_id=thread_id,
                    cluster_id=cluster,
                    home_cluster=home_cluster,
                    kind=kind,
                    address=address,
                    gap_cycles=gap_cycles,
                    size_bytes=size_bytes,
                    shared=len(parts) == 7,
                )
            )
    stream.validate()
    return stream


# ---------------------------------------------------------------------------
# Binary format (corona-trace bin2)
# ---------------------------------------------------------------------------

def _native_to_little(column: array) -> array:
    """A little-endian copy of ``column`` (no-op on little-endian hosts)."""
    if sys.byteorder == "little":
        return column
    swapped = array(column.typecode, column)  # pragma: no cover - BE hosts
    swapped.byteswap()  # pragma: no cover - BE hosts
    return swapped  # pragma: no cover - BE hosts


def write_trace_binary(trace: AnyTrace, path: Union[str, Path]) -> None:
    """Write a trace to ``path`` in the packed binary format.

    Accepts either representation; a :class:`TraceStream` is packed first.
    Every field round-trips exactly, including the shared-``S`` flag (bit 1
    of each packed meta word) and full-precision gaps.
    """
    packed = as_packed(trace)
    name = packed.name.encode("utf-8")
    description = packed.description.encode("utf-8")
    path = Path(path)
    with path.open("wb") as handle:
        handle.write(_BINARY_MAGIC)
        handle.write(
            _BINARY_HEADER.pack(
                packed.num_clusters,
                packed.threads_per_cluster,
                len(packed.thread_ids),
                len(packed.meta),
                len(name),
                len(description),
            )
        )
        handle.write(name)
        handle.write(description)
        for code, column in (
            ("q", packed.thread_ids),
            ("q", packed.offsets),
            ("Q", packed.meta),
            ("Q", packed.addresses),
            ("d", packed.gaps),
        ):
            if not isinstance(column, array):
                column = array(code, column)
            handle.write(_native_to_little(column).tobytes())


def sniff_trace_format(path: Union[str, Path]) -> str:
    """``"binary"`` or ``"text"`` by magic bytes (errors on neither)."""
    path = Path(path)
    with path.open("rb") as probe:
        head = probe.read(max(len(_BINARY_MAGIC), len(_HEADER_PREFIX)))
    if head.startswith(_BINARY_MAGIC):
        return "binary"
    if head.startswith(_HEADER_PREFIX.encode("ascii")):
        return "text"
    raise ValueError(
        f"{path}: neither a corona-trace v1 text file nor a bin2 binary "
        f"(starts with {head[:20]!r})"
    )


def read_trace_packed(path: Union[str, Path]) -> PackedTrace:
    """Read either trace format into a :class:`PackedTrace` (the binary
    format loads without per-record parsing)."""
    if sniff_trace_format(path) == "binary":
        return read_trace_binary(path)
    return as_packed(read_trace(path))


def read_trace_metadata(path: Union[str, Path]) -> dict:
    """A trace file's shape without loading its columns.

    Reads only the header: ``name``, ``num_clusters``,
    ``threads_per_cluster`` and -- for the binary format, whose fixed-size
    header stores it -- ``num_records`` (``None`` for text files, whose
    record count requires a full scan).  The cheap peek behind
    :class:`~repro.trace.file.TraceFileWorkload`'s lazy loading.
    """
    path = Path(path)
    if sniff_trace_format(path) == "binary":
        with path.open("rb") as handle:
            handle.read(len(_BINARY_MAGIC))
            header = handle.read(_BINARY_HEADER.size)
            if len(header) != _BINARY_HEADER.size:
                raise ValueError(f"{path}: truncated binary trace header")
            (
                num_clusters,
                threads_per_cluster,
                _num_threads,
                num_records,
                name_len,
                _description_len,
            ) = _BINARY_HEADER.unpack(header)
            name = handle.read(name_len).decode("utf-8")
        return {
            "name": name,
            "num_clusters": num_clusters,
            "threads_per_cluster": threads_per_cluster,
            "num_records": num_records,
        }
    with path.open("r", encoding="utf-8") as handle:
        fields = _parse_header(handle.readline().rstrip("\n"))
    return {
        "name": fields["name"].strip("'\""),
        "num_clusters": int(fields["clusters"]),
        "threads_per_cluster": int(fields["threads_per_cluster"]),
        "num_records": None,
    }


def trace_summary(path: Union[str, Path]) -> dict:
    """Inspection record for ``corona-repro trace info``: format, shape and
    first-order statistics of a trace file."""
    path = Path(path)
    fmt = sniff_trace_format(path)
    packed = read_trace_packed(path)
    total = packed.total_requests
    writes = sum(1 for word in packed.meta if word & KIND_BIT)
    return {
        "path": str(path),
        "format": fmt,
        "name": packed.name,
        "description": packed.description,
        "num_clusters": packed.num_clusters,
        "threads_per_cluster": packed.threads_per_cluster,
        "threads_with_records": len(packed.thread_ids),
        "records": total,
        "reads": total - writes,
        "writes": writes,
        "shared_fraction": packed.shared_fraction(),
        "mean_gap_cycles": (
            sum(packed.gaps) / total if total else 0.0
        ),
        "distinct_homes": len(packed.destination_histogram()),
        "file_bytes": path.stat().st_size,
    }


def read_trace_binary(path: Union[str, Path]) -> PackedTrace:
    """Read a packed binary trace file back into a :class:`PackedTrace`."""
    path = Path(path)
    with path.open("rb") as handle:
        magic = handle.read(len(_BINARY_MAGIC))
        if magic != _BINARY_MAGIC:
            raise ValueError(
                f"not a corona-trace bin2 file (starts with {magic[:20]!r})"
            )
        header = handle.read(_BINARY_HEADER.size)
        if len(header) != _BINARY_HEADER.size:
            raise ValueError(f"{path}: truncated binary trace header")
        (
            num_clusters,
            threads_per_cluster,
            num_threads,
            num_records,
            name_len,
            description_len,
        ) = _BINARY_HEADER.unpack(header)
        name = handle.read(name_len).decode("utf-8")
        description = handle.read(description_len).decode("utf-8")

        def read_column(code: str, count: int) -> array:
            column = array(code)
            data = handle.read(8 * count)
            if len(data) != 8 * count:
                raise ValueError(f"{path}: truncated {code!r} column")
            column.frombytes(data)
            return _native_to_little(column)

        return PackedTrace(
            name=name,
            num_clusters=num_clusters,
            threads_per_cluster=threads_per_cluster,
            thread_ids=read_column("q", num_threads),
            offsets=read_column("q", num_threads + 1),
            meta=read_column("Q", num_records),
            addresses=read_column("Q", num_records),
            gaps=read_column("d", num_records),
            description=description,
        )
