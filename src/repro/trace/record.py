"""L2-miss trace records and streams.

A trace is a collection of per-thread sequences of L2-miss records.  Each
record describes one miss the thread's cluster must satisfy from main memory
(or a remote cluster's memory controller):

* ``gap_cycles`` -- core clock cycles of computation between the *issue* of
  the previous miss by this thread and the issue of this one.  The replay
  engine combines the gap with a bounded number of outstanding misses per
  thread to recreate the thread's latency tolerance.
* ``home_cluster`` -- the cluster whose memory controller owns the line.
* ``kind`` -- read (demand load / instruction fetch) or write (store miss /
  writeback), which determines the sizes of the request and response messages.
* ``address`` -- a synthetic physical address, used by the cache/coherence
  substrate and kept so traces remain usable by finer-grained models.
* ``shared`` -- whether the line is shared between clusters.  Shared misses
  consult the home cluster's MOESI directory during coherence-enabled
  replays (:mod:`repro.coherence`); private misses go straight to memory.

The replay engine does not need absolute timestamps: they emerge from the
gaps, the window and the simulated latencies, exactly as in the paper's
two-phase methodology.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List

#: Size of a cache line transferred per miss (Table 1).
CACHE_LINE_BYTES = 64


class AccessKind(enum.Enum):
    """Type of memory access behind an L2 miss."""

    READ = "R"
    WRITE = "W"

    @classmethod
    def from_code(cls, code: str) -> "AccessKind":
        for kind in cls:
            if kind.value == code:
                return kind
        raise ValueError(f"unknown access kind code {code!r}")


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One L2 miss issued by one hardware thread."""

    thread_id: int
    cluster_id: int
    home_cluster: int
    kind: AccessKind
    address: int
    gap_cycles: float
    size_bytes: int = CACHE_LINE_BYTES
    shared: bool = False

    def __post_init__(self) -> None:
        if self.thread_id < 0:
            raise ValueError(f"thread id must be non-negative, got {self.thread_id}")
        if self.cluster_id < 0:
            raise ValueError(
                f"cluster id must be non-negative, got {self.cluster_id}"
            )
        if self.home_cluster < 0:
            raise ValueError(
                f"home cluster must be non-negative, got {self.home_cluster}"
            )
        if self.gap_cycles < 0:
            raise ValueError(
                f"gap cycles must be non-negative, got {self.gap_cycles}"
            )
        if self.size_bytes <= 0:
            raise ValueError(f"size must be positive, got {self.size_bytes}")

    @property
    def is_write(self) -> bool:
        return self.kind is AccessKind.WRITE


@dataclass
class ThreadTrace:
    """The ordered miss sequence of one hardware thread."""

    thread_id: int
    cluster_id: int
    records: List[TraceRecord] = field(default_factory=list)

    def append(self, record: TraceRecord) -> None:
        if record.thread_id != self.thread_id:
            raise ValueError(
                f"record thread {record.thread_id} does not match trace thread "
                f"{self.thread_id}"
            )
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)


@dataclass
class TraceStream:
    """A complete workload trace: every thread's miss sequence plus metadata."""

    name: str
    num_clusters: int
    threads_per_cluster: int
    threads: Dict[int, ThreadTrace] = field(default_factory=dict)
    description: str = ""

    def thread(self, thread_id: int) -> ThreadTrace:
        """Get (or lazily create) the trace of ``thread_id``."""
        if thread_id not in self.threads:
            cluster = thread_id // self.threads_per_cluster
            if cluster >= self.num_clusters:
                raise ValueError(
                    f"thread {thread_id} maps to cluster {cluster}, beyond "
                    f"{self.num_clusters} clusters"
                )
            self.threads[thread_id] = ThreadTrace(
                thread_id=thread_id, cluster_id=cluster
            )
        return self.threads[thread_id]

    def add(self, record: TraceRecord) -> None:
        self.thread(record.thread_id).append(record)

    @property
    def total_threads(self) -> int:
        return self.num_clusters * self.threads_per_cluster

    @property
    def total_requests(self) -> int:
        return sum(len(t) for t in self.threads.values())

    @property
    def total_bytes(self) -> int:
        return sum(
            record.size_bytes
            for thread in self.threads.values()
            for record in thread.records
        )

    def all_records(self) -> Iterator[TraceRecord]:
        """Iterate over every record, grouped by thread."""
        for thread_id in sorted(self.threads):
            yield from self.threads[thread_id].records

    def destination_histogram(self) -> Dict[int, int]:
        """Requests per home cluster -- useful for verifying traffic patterns."""
        histogram: Dict[int, int] = {}
        for record in self.all_records():
            histogram[record.home_cluster] = histogram.get(record.home_cluster, 0) + 1
        return histogram

    def shared_fraction(self) -> float:
        """Fraction of records tagged as coherence-visible shared lines."""
        total = self.total_requests
        if total == 0:
            return 0.0
        shared = sum(1 for record in self.all_records() if record.shared)
        return shared / total

    def read_fraction(self) -> float:
        total = self.total_requests
        if total == 0:
            return 0.0
        reads = sum(
            1 for record in self.all_records() if record.kind is AccessKind.READ
        )
        return reads / total

    def mean_gap_cycles(self) -> float:
        total = self.total_requests
        if total == 0:
            return 0.0
        return sum(r.gap_cycles for r in self.all_records()) / total

    def validate(self) -> None:
        """Raise if any record is inconsistent with the stream's shape."""
        for thread_id, thread in self.threads.items():
            expected_cluster = thread_id // self.threads_per_cluster
            if thread.cluster_id != expected_cluster:
                raise ValueError(
                    f"thread {thread_id} claims cluster {thread.cluster_id}, "
                    f"expected {expected_cluster}"
                )
            for record in thread.records:
                if record.cluster_id != expected_cluster:
                    raise ValueError(
                        f"record in thread {thread_id} claims cluster "
                        f"{record.cluster_id}, expected {expected_cluster}"
                    )
                if record.home_cluster >= self.num_clusters:
                    raise ValueError(
                        f"record home cluster {record.home_cluster} out of range"
                    )


def merge_streams(name: str, streams: Iterable[TraceStream]) -> TraceStream:
    """Concatenate several traces (same shape) thread by thread."""
    streams = list(streams)
    if not streams:
        raise ValueError("cannot merge zero streams")
    first = streams[0]
    merged = TraceStream(
        name=name,
        num_clusters=first.num_clusters,
        threads_per_cluster=first.threads_per_cluster,
        description=f"merge of {[s.name for s in streams]}",
    )
    for stream in streams:
        if (
            stream.num_clusters != first.num_clusters
            or stream.threads_per_cluster != first.threads_per_cluster
        ):
            raise ValueError("cannot merge streams with different shapes")
        for record in stream.all_records():
            merged.add(record)
    return merged
