"""Harness chaos: injected worker crashes, hangs and errors.

This is the *test* side of the resilience layer -- it never touches the
simulation.  When the ``CORONA_CHAOS`` environment variable is set, worker
processes consult it before replaying each pair and may deterministically
crash (``os._exit``), hang (``time.sleep``) or raise, exercising the
supervised pool's crash detection, timeouts and retries.  The CI
``chaos-smoke`` job and the resilience tests drive it; production runs never
set the variable.

Format (comma-separated ``key=value``)::

    CORONA_CHAOS="crash=0.5,hang=0.0,error=0.0,seed=3,attempts=1,hang_s=30"

``crash``/``hang``/``error`` are per-pair probabilities; ``seed`` keys the
deterministic draws; ``attempts`` caps how many attempts of a pair are
sabotaged (the default 1 means retries succeed); ``hang_s`` is the sleep of
a hang.  Draws key :func:`~repro.faults.determinism.stable_uniform` with the
pair's submission index, so the same pairs misbehave on every run.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.faults.determinism import stable_uniform

#: Environment variable carrying the chaos spec ("" / unset = no chaos).
CHAOS_ENV_VAR = "CORONA_CHAOS"

#: Exit status of an injected crash (distinctive in worker post-mortems).
CHAOS_EXIT_CODE = 86

# Site codes for the three sabotage kinds (disjoint from inject.py's sites
# by construction: chaos draws use its own seed space).
_SITE_CRASH = 101
_SITE_HANG = 102
_SITE_ERROR = 103


class ChaosError(RuntimeError):
    """The error kind of injected chaos (a deterministic worker failure)."""


@dataclass(frozen=True)
class ChaosSpec:
    """Parsed ``CORONA_CHAOS`` contents."""

    crash_rate: float = 0.0
    hang_rate: float = 0.0
    error_rate: float = 0.0
    seed: int = 0
    attempts: int = 1
    hang_s: float = 30.0

    @classmethod
    def parse(cls, text: str) -> "ChaosSpec":
        """Parse the comma-separated spec, raising ValueError on bad input."""
        values = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"bad {CHAOS_ENV_VAR} entry {part!r}; expected key=value"
                )
            key, raw = part.split("=", 1)
            key = key.strip()
            try:
                value = float(raw.strip())
            except ValueError:
                raise ValueError(
                    f"bad {CHAOS_ENV_VAR} value for {key!r}: {raw!r}"
                ) from None
            values[key] = value
        known = {
            "crash": "crash_rate",
            "hang": "hang_rate",
            "error": "error_rate",
            "seed": "seed",
            "attempts": "attempts",
            "hang_s": "hang_s",
        }
        unknown = sorted(set(values) - set(known))
        if unknown:
            raise ValueError(
                f"unknown {CHAOS_ENV_VAR} key {unknown[0]!r}; "
                f"known: {sorted(known)}"
            )
        kwargs = {known[key]: value for key, value in values.items()}
        for int_field in ("seed", "attempts"):
            if int_field in kwargs:
                kwargs[int_field] = int(kwargs[int_field])
        return cls(**kwargs)


_CACHE: Tuple[Optional[str], Optional[ChaosSpec]] = (None, None)


def active_chaos() -> Optional[ChaosSpec]:
    """The current environment's chaos spec, or None when unset/empty.

    Parsed once per distinct variable value (workers inherit the parent's
    environment, so this is effectively parse-once per process).
    """
    global _CACHE
    # lint: ignore[det-wall-clock] the env var IS the chaos hook's interface
    text = os.environ.get(CHAOS_ENV_VAR, "")
    if not text.strip():
        return None
    cached_text, cached_spec = _CACHE
    if text != cached_text:
        _CACHE = (text, ChaosSpec.parse(text))
    return _CACHE[1]


def maybe_sabotage(pair_index: int, attempt: int, in_process: bool) -> None:
    """Possibly sabotage this attempt of pair ``pair_index``.

    Crash and hang sabotage only apply to pool workers (``in_process``
    False); the error kind applies everywhere, so serial retry paths are
    testable too.  Attempts at or beyond the spec's ``attempts`` are always
    left alone, which is what lets retried pairs complete bit-identically.
    """
    spec = active_chaos()
    if spec is None or attempt >= spec.attempts:
        return
    if not in_process:
        if spec.crash_rate > 0.0 and (
            stable_uniform(spec.seed, _SITE_CRASH, pair_index, attempt)
            < spec.crash_rate
        ):
            os._exit(CHAOS_EXIT_CODE)
        if spec.hang_rate > 0.0 and (
            stable_uniform(spec.seed, _SITE_HANG, pair_index, attempt)
            < spec.hang_rate
        ):
            # lint: ignore[det-wall-clock] sabotage hangs real worker time
            time.sleep(spec.hang_s)
    if spec.error_rate > 0.0 and (
        stable_uniform(spec.seed, _SITE_ERROR, pair_index, attempt)
        < spec.error_rate
    ):
        raise ChaosError(
            f"injected chaos error (pair {pair_index}, attempt {attempt})"
        )
