"""Deterministic fault injection for the modeled hardware.

The package has three layers:

* :mod:`repro.faults.spec` -- :class:`FaultSpec`, the frozen, seeded,
  JSON-round-tripping description of *which* hardware faults a run injects
  (ring-resonator detuning, arbitration token loss, dead waveguides/links,
  transient DRAM timeouts).  It travels through the Scenario/sweep JSON tree
  like every other spec node.
* :mod:`repro.faults.inject` -- :class:`FaultInjector`, which turns a spec
  into concrete degradations of a freshly built system (per-channel
  bandwidth, per-link slowdowns, token-regeneration waits, DRAM retries) and
  counts what it did in :class:`FaultStats`.
* :mod:`repro.faults.chaos` -- *harness* chaos (worker crashes, hangs,
  injected errors) driven by the ``CORONA_CHAOS`` environment variable; used
  by the resilience tests and the CI ``chaos-smoke`` job, never by the
  simulation itself.

Every fault decision is a pure function of ``(seed, site, counter)`` via
:func:`repro.faults.determinism.stable_uniform`, so identical seeds produce
identical fault schedules regardless of worker count or execution order.
"""

from repro.faults.determinism import stable_uniform
from repro.faults.inject import FaultInjector, FaultStats
from repro.faults.spec import FaultError, FaultSpec

__all__ = [
    "FaultError",
    "FaultInjector",
    "FaultSpec",
    "FaultStats",
    "stable_uniform",
]
