"""Order-independent pseudo-randomness for fault decisions.

Fault schedules must be *bit-identical* between ``--jobs 1`` and ``--jobs N``
runs, so no fault decision may depend on global RNG state or on the order in
which pairs happen to execute.  :func:`stable_uniform` derives a uniform
variate purely from ``(seed, site, a, b)`` integer keys using a
splitmix64-style finalizer -- unlike ``hash()`` it is independent of
``PYTHONHASHSEED``, and unlike ``random.Random`` it carries no state between
draws.  Callers key each draw by a static site code plus per-site
coordinates (channel and wavelength index, link endpoints, access counter),
which makes every decision reproducible in isolation.
"""

from __future__ import annotations

_MASK = 0xFFFFFFFFFFFFFFFF

# splitmix64 finalizer constants (Steele et al., "Fast splittable
# pseudorandom number generators").
_C1 = 0x9E3779B97F4A7C15
_C2 = 0xBF58476D1CE4E5B9
_C3 = 0x94D049BB133111EB
_TWO64 = float(2**64)


def _mix(z: int) -> int:
    z = ((z ^ (z >> 30)) * _C2) & _MASK
    z = ((z ^ (z >> 27)) * _C3) & _MASK
    return z ^ (z >> 31)


def stable_uniform(seed: int, site: int, a: int, b: int = 0) -> float:
    """A uniform variate in ``[0, 1)`` keyed by four integers.

    ``seed`` is the user-visible fault seed, ``site`` a static code naming
    the decision class, ``a``/``b`` the per-site coordinates.  The same four
    keys always yield the same variate; nearby keys are decorrelated by the
    chained splitmix64 finalizer.
    """
    z = _mix((seed * _C1 + 1) & _MASK)
    z = _mix(z ^ ((site * _C2) & _MASK))
    z = _mix(z ^ ((a * _C3) & _MASK))
    if b:
        z = _mix(z ^ ((b * _C1) & _MASK))
    return z / _TWO64
