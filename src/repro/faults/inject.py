"""Turning a :class:`~repro.faults.spec.FaultSpec` into concrete degradation.

A :class:`FaultInjector` is built fresh for each simulator (its counters are
per-replay) and *installs* the spec's faults into the just-built network and
memory system:

* **Optical crossbar** -- per-channel detuned-wavelength draws plus
  dead-bundle draws shrink each channel's usable bandwidth (the
  ``_fault_channel_bw`` table the transfer hot path consults), and a
  per-grant token-loss draw adds the regeneration timeout to the grant time.
  The bandwidth a partially detuned channel retains follows the photonic
  channel model (:meth:`~repro.photonics.dwdm.DwdmChannel.
  degraded_bandwidth_bytes_per_s`): surviving wavelengths keep their full
  per-wavelength rate.
* **Electrical mesh** -- per-link dead draws install serialization
  multipliers (``_fault_link_slow``); a degraded link still delivers, just
  slower, so routes never sever and replays never deadlock.
* **Memory controllers** -- a per-access transient-timeout draw (keyed by
  the controller's deterministic access counter) adds the retry latency to
  the DRAM stage.

Every draw keys :func:`~repro.faults.determinism.stable_uniform` with a
static site code plus static coordinates, so the schedule depends only on
the spec's seed -- never on worker count or pair execution order.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.determinism import stable_uniform
from repro.faults.spec import FaultSpec
from repro.network.crossbar import OpticalCrossbar
from repro.network.mesh import ElectricalMesh

#: Wavelengths per crossbar channel (4 waveguides x 64-wavelength combs),
#: matching :func:`repro.photonics.dwdm.corona_crossbar_channel`.
CROSSBAR_CHANNEL_WAVELENGTHS = 256

# Static site codes keying stable_uniform draws; one per decision class.
_SITE_DETUNING = 1
_SITE_DEAD_OPTICAL = 2
_SITE_DEAD_LINK = 3
_SITE_TOKEN = 4
_SITE_DRAM = 5


class FaultStats:
    """Mutable per-replay counters of what the injector actually did."""

    __slots__ = (
        "wavelengths_disabled",
        "links_degraded",
        "tokens_lost",
        "token_regen_wait_s",
        "dram_timeouts",
        "dram_retry_s",
    )

    def __init__(self) -> None:
        self.wavelengths_disabled = 0
        self.links_degraded = 0
        self.tokens_lost = 0
        self.token_regen_wait_s = 0.0
        self.dram_timeouts = 0
        self.dram_retry_s = 0.0


class FaultInjector:
    """Installs one spec's faults into a freshly built system."""

    __slots__ = ("spec", "stats", "_token_regen_s", "on_fault")

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self.stats = FaultStats()
        self._token_regen_s = 0.0
        #: Optional observability hook ``(kind, site, delay_s)`` fired when a
        #: per-event fault actually triggers; the timeline recorder installs
        #: it (:mod:`repro.obs.timeline`).  ``None`` costs one check per
        #: *triggered* fault, never per event.
        self.on_fault = None

    # -- installation --------------------------------------------------------
    def install(self, network, memory) -> None:
        """Degrade ``network`` and ``memory`` according to the spec.

        Interconnect types the injector does not model (user-registered
        networks) are left untouched; their runs simply report zero fault
        counters.
        """
        if isinstance(network, OpticalCrossbar):
            self._install_crossbar(network)
        elif isinstance(network, ElectricalMesh):
            self._install_mesh(network)
        if memory is not None and self.spec.dram_timeout_rate > 0.0:
            for controller in memory.controllers.values():
                controller.fault_dram = self.dram_extra_delay

    def _install_crossbar(self, network: OpticalCrossbar) -> None:
        spec = self.spec
        detune = spec.ring_detuning_fraction
        dead = spec.dead_link_fraction
        if detune > 0.0 or dead > 0.0:
            base = network.channel_bandwidth_bytes_per_s
            table = []
            degraded = False
            for channel in range(network.num_clusters):
                photonic = (
                    network.photonic_channels.get(channel)
                    if network.photonic_channels is not None
                    else None
                )
                wavelengths = (
                    photonic.phit_bits
                    if photonic is not None
                    else CROSSBAR_CHANNEL_WAVELENGTHS
                )
                disabled = 0
                if detune > 0.0:
                    for wavelength in range(wavelengths):
                        if (
                            stable_uniform(
                                spec.seed, _SITE_DETUNING, channel, wavelength
                            )
                            < detune
                        ):
                            disabled += 1
                # Clamp: at least one surviving wavelength per channel, so a
                # fully detuned channel degrades instead of deadlocking.
                disabled = min(disabled, wavelengths - 1)
                self.stats.wavelengths_disabled += disabled
                if photonic is not None:
                    bandwidth = photonic.degraded_bandwidth_bytes_per_s(disabled)
                else:
                    bandwidth = base * (wavelengths - disabled) / wavelengths
                if (
                    dead > 0.0
                    and stable_uniform(spec.seed, _SITE_DEAD_OPTICAL, channel)
                    < dead
                ):
                    bandwidth *= spec.dead_link_bandwidth_scale
                    self.stats.links_degraded += 1
                if bandwidth != base:
                    degraded = True
                table.append(bandwidth)
            if degraded:
                network._fault_channel_bw = table
        if spec.token_loss_rate > 0.0:
            self._token_regen_s = (
                spec.token_regeneration_cycles / network.clock_hz
            )
            network._fault_injector = self

    def _install_mesh(self, network: ElectricalMesh) -> None:
        spec = self.spec
        if spec.dead_link_fraction <= 0.0:
            return
        slowdown = 1.0 / spec.dead_link_bandwidth_scale
        slow = {}
        for src, dst in network.links:
            if (
                stable_uniform(spec.seed, _SITE_DEAD_LINK, src, dst)
                < spec.dead_link_fraction
            ):
                slow[src * network.num_clusters + dst] = slowdown
                self.stats.links_degraded += 1
        if slow:
            network._fault_link_slow = slow

    # -- per-event hooks (called from the transfer/access hot paths) ---------
    def token_extra_delay(self, channel: int, grant_index: int) -> float:
        """Extra grant delay if this grant's token re-injection was lost."""
        spec = self.spec
        if (
            stable_uniform(spec.seed, _SITE_TOKEN, channel, grant_index)
            < spec.token_loss_rate
        ):
            self.stats.tokens_lost += 1
            self.stats.token_regen_wait_s += self._token_regen_s
            hook = self.on_fault
            if hook is not None:
                hook("token_lost", channel, self._token_regen_s)
            return self._token_regen_s
        return 0.0

    def dram_extra_delay(self, controller_id: int, access_index: int) -> float:
        """Extra DRAM latency if this access timed out and was retried."""
        spec = self.spec
        if (
            stable_uniform(spec.seed, _SITE_DRAM, controller_id, access_index)
            < spec.dram_timeout_rate
        ):
            retry = spec.dram_retry_latency_ns * 1e-9
            self.stats.dram_timeouts += 1
            self.stats.dram_retry_s += retry
            hook = self.on_fault
            if hook is not None:
                hook("dram_timeout", controller_id, retry)
            return retry
        return 0.0


def build_injector(spec: Optional[FaultSpec]) -> Optional[FaultInjector]:
    """An injector for ``spec``, or None when the spec is absent/inactive."""
    if spec is None or not spec.any_active:
        return None
    return FaultInjector(spec)
