"""The frozen, seeded fault specification.

A :class:`FaultSpec` describes which hardware faults a run injects and how
severe they are, as a JSON-round-tripping node of the Scenario tree
(``"faults": {...}`` in a scenario file, sweepable via ``faults.<field>``
axis paths).  All rates default to zero: a default spec is *inactive* and a
``faults: null`` scenario builds byte-identical systems to one that never
mentions faults at all.

The four fault models map to the failure modes of the paper's hardware:

``ring_detuning_fraction``
    Probability that any one DWDM wavelength of an optical channel is
    thermally detuned and carries no data, shrinking that channel's usable
    phit width (the crossbar channel is 256 wavelengths wide).
``token_loss_rate`` / ``token_regeneration_cycles``
    Probability that a channel's arbitration token is lost when re-injected
    after a grant; the home cluster regenerates it after the configured
    timeout, so the next writer waits instead of deadlocking.
``dead_link_fraction`` / ``dead_link_bandwidth_scale``
    Probability that a mesh link (or a crossbar channel's waveguide bundle)
    is partially dead; survivors run at the configured bandwidth fraction --
    degraded lanes, never a severed route.
``dram_timeout_rate`` / ``dram_retry_latency_ns``
    Probability that one DRAM access times out transiently and is retried
    after the configured extra latency.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Mapping


class FaultError(ValueError):
    """A fault spec field failed to parse or validate.

    ``field`` holds the dotted path relative to the spec root (e.g.
    ``token_loss_rate``); ``reason`` the bare message.  The Scenario parser
    re-raises this as a :class:`~repro.api.scenario.ScenarioError` with the
    enclosing ``faults.`` prefix.
    """

    def __init__(self, field: str, reason: str) -> None:
        super().__init__(f"{field}: {reason}" if field else reason)
        self.field = field
        self.reason = reason


@dataclass(frozen=True)
class FaultSpec:
    """Deterministic fault injection parameters (all inactive by default)."""

    #: Seed of every fault decision; identical seeds give identical fault
    #: schedules regardless of worker count.
    seed: int = 0
    #: Per-wavelength probability of thermal detuning on optical channels.
    ring_detuning_fraction: float = 0.0
    #: Per-grant probability that the re-injected arbitration token is lost.
    token_loss_rate: float = 0.0
    #: Clocks until the home cluster regenerates a lost token.
    token_regeneration_cycles: float = 64.0
    #: Per-link (per-bundle) probability of partial failure.
    dead_link_fraction: float = 0.0
    #: Bandwidth fraction a degraded link retains (must stay positive).
    dead_link_bandwidth_scale: float = 0.5
    #: Per-access probability of a transient DRAM timeout.
    dram_timeout_rate: float = 0.0
    #: Extra latency of one DRAM retry, in nanoseconds.
    dram_retry_latency_ns: float = 200.0

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise FaultError("seed", f"must be an integer, got {self.seed!r}")
        if self.seed < 0:
            raise FaultError("seed", f"must be >= 0, got {self.seed}")
        for name in (
            "ring_detuning_fraction",
            "token_loss_rate",
            "dead_link_fraction",
            "dram_timeout_rate",
        ):
            value = getattr(self, name)
            self._expect_number(name, value)
            if not 0.0 <= value <= 1.0:
                raise FaultError(
                    name, f"must be a probability in [0, 1], got {value!r}"
                )
        self._expect_number(
            "token_regeneration_cycles", self.token_regeneration_cycles
        )
        if self.token_regeneration_cycles < 0:
            raise FaultError(
                "token_regeneration_cycles",
                f"must be >= 0, got {self.token_regeneration_cycles!r}",
            )
        self._expect_number(
            "dead_link_bandwidth_scale", self.dead_link_bandwidth_scale
        )
        if not 0.0 < self.dead_link_bandwidth_scale <= 1.0:
            raise FaultError(
                "dead_link_bandwidth_scale",
                f"must be in (0, 1] so degraded links keep some bandwidth "
                f"(a zero-bandwidth link would deadlock), got "
                f"{self.dead_link_bandwidth_scale!r}",
            )
        self._expect_number("dram_retry_latency_ns", self.dram_retry_latency_ns)
        if self.dram_retry_latency_ns < 0:
            raise FaultError(
                "dram_retry_latency_ns",
                f"must be >= 0, got {self.dram_retry_latency_ns!r}",
            )

    @staticmethod
    def _expect_number(name: str, value: object) -> None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise FaultError(name, f"must be a number, got {value!r}")

    @property
    def any_active(self) -> bool:
        """Whether this spec injects anything at all."""
        return (
            self.ring_detuning_fraction > 0.0
            or self.token_loss_rate > 0.0
            or self.dead_link_fraction > 0.0
            or self.dram_timeout_rate > 0.0
        )

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """All fields as a JSON-clean mapping (exact round-trip)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultSpec":
        """Parse a spec mapping, raising :class:`FaultError` naming any bad
        or unknown field."""
        if not isinstance(data, Mapping):
            raise FaultError(
                "", f"expected an object, got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise FaultError(
                unknown[0],
                f"unknown fault field; known fields: {sorted(known)}",
            )
        kwargs = dict(data)
        seed = kwargs.get("seed")
        if isinstance(seed, float) and seed.is_integer():
            kwargs["seed"] = int(seed)
        return cls(**kwargs)
