"""Validated field-path writes into scenario dicts.

The sweep subsystem addresses scenario fields by *path* --
``workloads[0].params.window``, ``system.configurations``,
``workloads[*].sharing.fraction`` -- and writes axis values into the
base scenario's dict form.  This module is that machinery, extracted so
programmatic overrides go through the same validated paths instead of
hand-built dict surgery: :func:`set_field` for dicts,
:meth:`repro.api.scenario.Scenario.with_field` for scenarios.

A path is dotted mapping keys with optional ``[i]`` list indices and the
``[*]`` wildcard, which fans the write out over every element of a list.
Intermediate mapping keys that are missing or ``null`` are created as
empty objects, so ``coherence.broadcast_threshold`` works even when the
base leaves ``coherence`` unset.

Every helper takes an ``error`` class so callers keep their own error
taxonomy: the sweep layer binds :class:`~repro.sweeps.spec.SweepError`,
the public helpers default to :class:`~repro.api.scenario.ScenarioError`.
Either way the raised message starts with the offending field path.
"""

from __future__ import annotations

import copy
import re
from typing import Dict, List, Mapping, Sequence, Tuple, Type

from repro.api.scenario import ScenarioError

_SEGMENT = re.compile(r"([A-Za-z_][A-Za-z0-9_]*)((?:\[(?:\d+|\*)\])*)\Z")
_INDEX = re.compile(r"\[(\d+|\*)\]")

#: Path token: ("key", name) descends into a mapping, ("index", i) into a
#: list, ("index", None) is the ``[*]`` wildcard (expanded per list entry).
PathToken = Tuple[str, object]


def parse_path(
    path: str, where: str, error: Type[ScenarioError] = ScenarioError
) -> Tuple[PathToken, ...]:
    """Parse a dotted field path into tokens, naming ``where`` on errors."""
    if not isinstance(path, str) or not path:
        raise error(where, "a non-empty field path string is required")
    tokens: List[PathToken] = []
    for segment in path.split("."):
        match = _SEGMENT.match(segment)
        if match is None:
            raise error(
                where,
                f"bad path segment {segment!r} in {path!r}; expected dotted "
                f"names with optional [index] or [*] suffixes, e.g. "
                f"\"workloads[0].params.window\"",
            )
        tokens.append(("key", match.group(1)))
        for index in _INDEX.findall(match.group(2)):
            tokens.append(("index", None if index == "*" else int(index)))
    return tuple(tokens)


def render_tokens(tokens: Sequence[PathToken]) -> str:
    """Render tokens back to path syntax (for error messages and claims)."""
    parts: List[str] = []
    for kind, value in tokens:
        if kind == "key":
            parts.append(("." if parts else "") + str(value))
        else:
            parts.append("*" if value is None else f"[{value}]")
    return "".join(part if part != "*" else "[*]" for part in parts)


def concrete_paths(
    data: Mapping,
    tokens: Sequence[PathToken],
    path: str,
    where: str,
    error: Type[ScenarioError] = ScenarioError,
) -> List[Tuple[PathToken, ...]]:
    """Expand ``[*]`` wildcards against ``data``, validating every index.

    Returns the concrete token tuples the path resolves to (one unless a
    wildcard fans out).  Missing intermediate *mapping* keys are fine (the
    write creates them); a list index past the end, or an index into a
    non-list, is an error naming ``where``.
    """
    concrete: List[List[PathToken]] = [[]]
    nodes: List[object] = [data]
    for position, (kind, value) in enumerate(tokens):
        next_concrete: List[List[PathToken]] = []
        next_nodes: List[object] = []
        for prefix, node in zip(concrete, nodes):
            if kind == "key":
                if node is not None and not isinstance(node, Mapping):
                    raise error(
                        where,
                        f"{render_tokens(tokens[:position]) or 'the base'} is "
                        f"{type(node).__name__}, cannot descend into "
                        f"{value!r} (path {path!r})",
                    )
                child = None if node is None else node.get(value)
                next_concrete.append(prefix + [(kind, value)])
                next_nodes.append(child)
            else:
                if not isinstance(node, (list, tuple)):
                    raise error(
                        where,
                        f"{render_tokens(tokens[:position])} is not a list "
                        f"in the base scenario (path {path!r})",
                    )
                if value is None:  # wildcard
                    if not node:
                        raise error(
                            where,
                            f"{render_tokens(tokens[:position])}[*] matches "
                            f"nothing: the base list is empty (path {path!r})",
                        )
                    for index, child in enumerate(node):
                        next_concrete.append(prefix + [("index", index)])
                        next_nodes.append(child)
                else:
                    if value >= len(node):
                        raise error(
                            where,
                            f"{render_tokens(tokens[:position])}[{value}] is "
                            f"out of range: the base has {len(node)} entries "
                            f"(path {path!r})",
                        )
                    next_concrete.append(prefix + [(kind, value)])
                    next_nodes.append(node[value])
        concrete = next_concrete
        nodes = next_nodes
    return [tuple(entry) for entry in concrete]


def apply_value(
    data: Dict,
    tokens: Sequence[PathToken],
    value: object,
    path: str,
    where: str,
    error: Type[ScenarioError] = ScenarioError,
) -> None:
    """Write ``value`` at a concrete token path inside the scenario dict.

    Intermediate mapping keys that are missing or ``null`` are created as
    empty objects, so a write can target ``coherence.broadcast_threshold``
    or ``workloads[0].sharing.fraction`` even when the base leaves the
    parent unset.
    """
    container: object = data
    for position, (kind, token) in enumerate(tokens[:-1]):
        if kind == "key":
            if not isinstance(container, dict):
                raise error(
                    where,
                    f"{render_tokens(tokens[:position]) or 'the base'} is "
                    f"{type(container).__name__}, cannot set into it "
                    f"(path {path!r})",
                )
            child = container.get(token)
            if child is None:
                child = {}
                container[token] = child
            container = child
        else:
            container = container[token]
    kind, token = tokens[-1]
    if kind == "key":
        if not isinstance(container, dict):
            raise error(
                where,
                f"{render_tokens(tokens[:-1]) or 'the base'} is "
                f"{type(container).__name__}, cannot set field {token!r} "
                f"(path {path!r})",
            )
        container[token] = copy.deepcopy(value)
    else:
        if not isinstance(container, list):
            raise error(
                where,
                f"{render_tokens(tokens[:-1])} is not a list (path {path!r})",
            )
        container[token] = copy.deepcopy(value)


def set_field(
    data: Dict,
    path: str,
    value: object,
    where: str = None,
    error: Type[ScenarioError] = ScenarioError,
) -> None:
    """Write ``value`` into ``data`` (a scenario dict) at field ``path``.

    The one-call form of the machinery above: parses the path, expands any
    ``[*]`` wildcard against ``data`` and applies the value at every
    concrete location, mutating ``data`` in place.  Raises ``error`` (a
    :class:`ScenarioError` by default) naming the path on any failure.
    """
    where = path if where is None else where
    tokens = parse_path(path, where, error)
    for concrete in concrete_paths(data, tokens, path, where, error):
        apply_value(data, concrete, value, path, where, error)
