"""The declarative, serializable scenario specification.

A :class:`Scenario` is a frozen dataclass tree that captures *everything the
harness can run* as plain data: which system configurations to build (by
registry name, plus :class:`~repro.core.config.CoronaConfig` overrides),
which workloads with which parameters (including sharing profiles), the
request-count scale tier, coherence settings, follow-on experiments, worker
count, user modules to import, and where to write the report and the
result sinks.

The representation is exact: ``Scenario.from_dict(s.to_dict()) == s`` for
every scenario, and the dict form is JSON-clean (lists, dicts, scalars), so
scenario files round-trip byte-stable through ``corona-repro scenario
init`` / ``validate`` / ``run``.

Every parsing or validation failure raises :class:`ScenarioError`, whose
message starts with the *path of the offending field* --
``workloads[2].sharing.fraction: ...`` -- so a typo in a 60-line scenario
file points at itself.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields, replace
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.coherence.engine import CoherenceConfig
from repro.coherence.sharing import SharingProfile
from repro.core.config import CORONA_DEFAULT, CoronaConfig
from repro.faults import FaultError, FaultSpec
from repro.obs.spec import ObservabilityError, ObservabilitySpec
from repro.trace.arrival import ArrivalError, ArrivalSpec
from repro.core.configs import CONFIGURATION_ORDER
from repro.harness.experiments import (
    FULL_SCALE,
    PAPER_SCALE,
    QUICK_SCALE,
    ExperimentScale,
)

#: Format tag written into scenario files (ignored on read when absent).
SCENARIO_FORMAT = "corona-scenario/1"

#: Named request-count tiers a scenario's ``scale.tier`` may pick.
SCALE_TIERS: Dict[str, ExperimentScale] = {
    "quick": QUICK_SCALE,
    "default": ExperimentScale(),
    "full": FULL_SCALE,
    "paper": PAPER_SCALE,
}


class ScenarioError(ValueError):
    """A scenario failed to parse or validate.

    ``field`` holds the dotted path of the offending field (e.g.
    ``workloads[0].sharing.fraction``); the message always starts with it.
    """

    def __init__(self, field_path: str, message: str) -> None:
        self.field = field_path
        super().__init__(f"{field_path}: {message}")


def _expect_mapping(value, path: str) -> Mapping:
    if not isinstance(value, Mapping):
        raise ScenarioError(path, f"expected an object, got {type(value).__name__}")
    return value


def _expect_list(value, path: str) -> List:
    if not isinstance(value, (list, tuple)):
        raise ScenarioError(path, f"expected a list, got {type(value).__name__}")
    return list(value)


def _expect_str(value, path: str) -> str:
    if not isinstance(value, str):
        raise ScenarioError(path, f"expected a string, got {type(value).__name__}")
    return value


def _expect_int(value, path: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ScenarioError(path, f"expected an integer, got {type(value).__name__}")
    return value


def _expect_number(value, path: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioError(path, f"expected a number, got {type(value).__name__}")
    return float(value)


def _reject_unknown(data: Mapping, known: Sequence[str], path: str) -> None:
    unknown = set(data) - set(known)
    if unknown:
        raise ScenarioError(
            f"{path}.{sorted(unknown)[0]}" if path else sorted(unknown)[0],
            f"unknown field; known fields: {list(known)}",
        )


# ---------------------------------------------------------------------------
# Spec nodes
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SystemSpec:
    """Which systems to build, and how to re-parameterize the architecture.

    ``configurations`` are configuration-registry names (the paper's five by
    default); ``overrides`` maps :class:`CoronaConfig` field names to new
    values (``cluster``/``core`` accept nested mappings) and applies to every
    configuration of the scenario.
    """

    configurations: Tuple[str, ...] = tuple(CONFIGURATION_ORDER)
    overrides: Mapping[str, object] = field(default_factory=dict)

    def corona_config(self) -> CoronaConfig:
        """The architecture config with this spec's overrides applied."""
        try:
            return CORONA_DEFAULT.with_overrides(self.overrides)
        except (ValueError, TypeError) as exc:
            raise ScenarioError("system.overrides", str(exc)) from None

    def to_dict(self) -> Dict[str, object]:
        return {
            "configurations": list(self.configurations),
            "overrides": dict(self.overrides),
        }

    @classmethod
    def from_dict(cls, data: Mapping, path: str = "system") -> "SystemSpec":
        data = _expect_mapping(data, path)
        _reject_unknown(data, ("configurations", "overrides"), path)
        names = _expect_list(
            data.get("configurations", list(CONFIGURATION_ORDER)),
            f"{path}.configurations",
        )
        configurations = tuple(
            _expect_str(name, f"{path}.configurations[{i}]")
            for i, name in enumerate(names)
        )
        if not configurations:
            raise ScenarioError(
                f"{path}.configurations", "at least one configuration is required"
            )
        overrides = dict(
            _expect_mapping(data.get("overrides", {}), f"{path}.overrides")
        )
        spec = cls(configurations=configurations, overrides=overrides)
        spec.corona_config()  # validate the override names/values eagerly
        return spec


def _sharing_to_dict(sharing) -> object:
    if sharing is None or isinstance(sharing, str):
        return sharing
    return asdict(sharing)


def _sharing_from_dict(value, path: str):
    if value is None:
        return None
    if isinstance(value, str):
        if value != "default":
            raise ScenarioError(
                path, f"expected 'default', a sharing object or null, got {value!r}"
            )
        return value
    data = _expect_mapping(value, path)
    try:
        return SharingProfile.from_dict(data)
    except ScenarioError:
        raise
    except (TypeError, ValueError) as exc:
        raise ScenarioError(path, str(exc)) from None


def _arrival_from_dict(value, path: str) -> Optional[ArrivalSpec]:
    if value is None:
        return None
    data = _expect_mapping(value, path)
    try:
        return ArrivalSpec.from_dict(dict(data))
    except ArrivalError as exc:
        raise ScenarioError(f"{path}.{exc.field}", exc.reason) from None


@dataclass(frozen=True)
class WorkloadSpec:
    """One workload of the scenario.

    ``name`` is a workload-registry name; ``params`` is passed verbatim to
    the registered factory (``mean_gap_cycles``, ``hot_cluster``, a ``name``
    /``label`` rename, ...).  ``sharing`` is ``None`` (off), ``"default"``
    (the workload's calibrated profile) or an explicit profile; it is passed
    to the factory as its ``sharing`` parameter.  ``arrival`` is ``None``
    (closed-loop) or an :class:`~repro.trace.arrival.ArrivalSpec` making the
    workload open-loop; it too is passed to the factory.  ``num_requests``
    overrides the scale tier's request count for this workload only.
    """

    name: str
    params: Mapping[str, object] = field(default_factory=dict)
    sharing: Optional[Union[str, SharingProfile]] = None
    arrival: Optional[ArrivalSpec] = None
    num_requests: Optional[int] = None

    def factory_params(self) -> Dict[str, object]:
        """The params to call the registered factory with."""
        params = dict(self.params)
        if self.sharing is not None:
            params["sharing"] = self.sharing
        if self.arrival is not None:
            params["arrival"] = self.arrival
        return params

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "params": dict(self.params),
            "sharing": _sharing_to_dict(self.sharing),
            "arrival": None if self.arrival is None else self.arrival.to_dict(),
            "num_requests": self.num_requests,
        }

    @classmethod
    def from_dict(cls, data, path: str) -> "WorkloadSpec":
        if isinstance(data, str):  # shorthand: "Uniform" == {"name": "Uniform"}
            return cls(name=data)
        data = _expect_mapping(data, path)
        _reject_unknown(
            data, ("name", "params", "sharing", "arrival", "num_requests"), path
        )
        if "name" not in data:
            raise ScenarioError(f"{path}.name", "workload name is required")
        name = _expect_str(data["name"], f"{path}.name")
        params = dict(_expect_mapping(data.get("params", {}), f"{path}.params"))
        sharing = _sharing_from_dict(data.get("sharing"), f"{path}.sharing")
        arrival = _arrival_from_dict(data.get("arrival"), f"{path}.arrival")
        num_requests = data.get("num_requests")
        if num_requests is not None:
            num_requests = _expect_int(num_requests, f"{path}.num_requests")
            if num_requests < 1:
                raise ScenarioError(f"{path}.num_requests", "must be >= 1")
        return cls(
            name=name,
            params=params,
            sharing=sharing,
            arrival=arrival,
            num_requests=num_requests,
        )


_SCALE_FIELDS = (
    "tier",
    "synthetic_requests",
    "splash_fraction",
    "splash_min_requests",
    "splash_max_requests",
    "seed",
)


@dataclass(frozen=True)
class ScaleSpec:
    """A named request-count tier plus optional per-field overrides."""

    tier: str = "quick"
    synthetic_requests: Optional[int] = None
    splash_fraction: Optional[float] = None
    splash_min_requests: Optional[int] = None
    splash_max_requests: Optional[int] = None
    seed: Optional[int] = None

    def resolve(self) -> ExperimentScale:
        """The concrete :class:`ExperimentScale` this spec describes."""
        if self.tier not in SCALE_TIERS:
            raise ScenarioError(
                "scale.tier",
                f"unknown tier {self.tier!r}; known: {list(SCALE_TIERS)}",
            )
        overrides = {
            name: getattr(self, name)
            for name in _SCALE_FIELDS
            if name != "tier" and getattr(self, name) is not None
        }
        try:
            return replace(SCALE_TIERS[self.tier], **overrides)
        except ValueError as exc:
            raise ScenarioError("scale", str(exc)) from None

    def to_dict(self) -> Dict[str, object]:
        return {name: getattr(self, name) for name in _SCALE_FIELDS}

    @classmethod
    def from_dict(cls, data: Mapping, path: str = "scale") -> "ScaleSpec":
        data = _expect_mapping(data, path)
        _reject_unknown(data, _SCALE_FIELDS, path)
        tier = _expect_str(data.get("tier", "quick"), f"{path}.tier")
        values: Dict[str, object] = {"tier": tier}
        for name in ("synthetic_requests", "splash_min_requests",
                     "splash_max_requests", "seed"):
            if data.get(name) is not None:
                values[name] = _expect_int(data[name], f"{path}.{name}")
        if data.get("splash_fraction") is not None:
            values["splash_fraction"] = _expect_number(
                data["splash_fraction"], f"{path}.splash_fraction"
            )
        spec = cls(**values)
        spec.resolve()  # validate tier and override values eagerly
        return spec


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered follow-on experiment (extra report section)."""

    name: str
    params: Mapping[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data, path: str) -> "ExperimentSpec":
        if isinstance(data, str):
            return cls(name=data)
        data = _expect_mapping(data, path)
        _reject_unknown(data, ("name", "params"), path)
        if "name" not in data:
            raise ScenarioError(f"{path}.name", "experiment name is required")
        return cls(
            name=_expect_str(data["name"], f"{path}.name"),
            params=dict(_expect_mapping(data.get("params", {}), f"{path}.params")),
        )


@dataclass(frozen=True)
class OutputSpec:
    """Where to write the run's artefacts (all optional).

    ``report`` is the markdown report; ``json``/``csv`` are the machine
    sinks carrying every :class:`~repro.core.results.WorkloadResult` field.
    :meth:`derived` fills the machine sinks in next to the report.
    """

    report: Optional[str] = None
    json: Optional[str] = None
    csv: Optional[str] = None

    def derived(self) -> "OutputSpec":
        """JSON/CSV paths next to the report for any sink not set."""
        if self.report is None:
            return self
        base = Path(self.report)
        return OutputSpec(
            report=self.report,
            json=self.json or str(base.with_suffix(".results.json")),
            csv=self.csv or str(base.with_suffix(".results.csv")),
        )

    def to_dict(self) -> Dict[str, object]:
        return {"report": self.report, "json": self.json, "csv": self.csv}

    @classmethod
    def from_dict(cls, data: Mapping, path: str = "output") -> "OutputSpec":
        data = _expect_mapping(data, path)
        _reject_unknown(data, ("report", "json", "csv"), path)
        values = {}
        for name in ("report", "json", "csv"):
            if data.get(name) is not None:
                values[name] = _expect_str(data[name], f"{path}.{name}")
        return cls(**values)


def _faults_from_dict(data, path: str) -> Optional[FaultSpec]:
    if data is None:
        return None
    data = _expect_mapping(data, path)
    try:
        return FaultSpec.from_dict(data)
    except FaultError as exc:
        raise ScenarioError(f"{path}.{exc.field}", exc.reason) from None


def _observability_from_dict(data, path: str) -> Optional[ObservabilitySpec]:
    if data is None:
        return None
    data = _expect_mapping(data, path)
    try:
        return ObservabilitySpec.from_dict(data)
    except ObservabilityError as exc:
        raise ScenarioError(f"{path}.{exc.field}", exc.reason) from None


def _coherence_from_dict(data, path: str) -> Optional[CoherenceConfig]:
    if data is None:
        return None
    data = _expect_mapping(data, path)
    known = [f.name for f in fields(CoherenceConfig)]
    _reject_unknown(data, known, path)
    try:
        return CoherenceConfig(**dict(data))
    except (TypeError, ValueError) as exc:
        raise ScenarioError(path, str(exc)) from None


_SCENARIO_FIELDS = (
    "format",
    "name",
    "description",
    "system",
    "workloads",
    "scale",
    "coherence",
    "faults",
    "observability",
    "experiments",
    "jobs",
    "modules",
    "output",
)


@dataclass(frozen=True)
class Scenario:
    """A complete, serializable description of one harness run.

    An empty ``workloads`` tuple means *every registered workload* in
    registry (= paper plot) order -- which is exactly the evaluation
    matrix.  ``modules`` are imported before names are resolved, in the
    parent and in worker processes, so they may register custom
    configurations and workloads.
    """

    name: str = "scenario"
    description: str = ""
    system: SystemSpec = field(default_factory=SystemSpec)
    workloads: Tuple[WorkloadSpec, ...] = ()
    scale: ScaleSpec = field(default_factory=ScaleSpec)
    coherence: Optional[CoherenceConfig] = None
    faults: Optional[FaultSpec] = None
    observability: Optional[ObservabilitySpec] = None
    experiments: Tuple[ExperimentSpec, ...] = ()
    jobs: int = 1
    modules: Tuple[str, ...] = ()
    output: OutputSpec = field(default_factory=OutputSpec)

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """The scenario as a JSON-clean mapping (exact round-trip)."""
        return {
            "format": SCENARIO_FORMAT,
            "name": self.name,
            "description": self.description,
            "system": self.system.to_dict(),
            "workloads": [w.to_dict() for w in self.workloads],
            "scale": self.scale.to_dict(),
            "coherence": None if self.coherence is None else asdict(self.coherence),
            "faults": None if self.faults is None else self.faults.to_dict(),
            "observability": (
                None
                if self.observability is None
                else self.observability.to_dict()
            ),
            "experiments": [e.to_dict() for e in self.experiments],
            "jobs": self.jobs,
            "modules": list(self.modules),
            "output": self.output.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Scenario":
        """Parse a scenario, raising :class:`ScenarioError` naming any bad
        field."""
        data = _expect_mapping(data, "scenario")
        _reject_unknown(data, _SCENARIO_FIELDS, "")
        fmt = data.get("format", SCENARIO_FORMAT)
        if fmt != SCENARIO_FORMAT:
            raise ScenarioError(
                "format", f"unsupported scenario format {fmt!r}; "
                f"this build reads {SCENARIO_FORMAT!r}"
            )
        workloads = tuple(
            WorkloadSpec.from_dict(entry, f"workloads[{i}]")
            for i, entry in enumerate(
                _expect_list(data.get("workloads", []), "workloads")
            )
        )
        experiments = tuple(
            ExperimentSpec.from_dict(entry, f"experiments[{i}]")
            for i, entry in enumerate(
                _expect_list(data.get("experiments", []), "experiments")
            )
        )
        modules = tuple(
            _expect_str(entry, f"modules[{i}]")
            for i, entry in enumerate(
                _expect_list(data.get("modules", []), "modules")
            )
        )
        jobs = _expect_int(data.get("jobs", 1), "jobs")
        if jobs < 0:
            raise ScenarioError("jobs", "must be >= 0 (0 = every CPU)")
        return cls(
            name=_expect_str(data.get("name", "scenario"), "name"),
            description=_expect_str(data.get("description", ""), "description"),
            system=SystemSpec.from_dict(data.get("system", {})),
            workloads=workloads,
            scale=ScaleSpec.from_dict(data.get("scale", {})),
            coherence=_coherence_from_dict(data.get("coherence"), "coherence"),
            faults=_faults_from_dict(data.get("faults"), "faults"),
            observability=_observability_from_dict(
                data.get("observability"), "observability"
            ),
            experiments=experiments,
            jobs=jobs,
            modules=modules,
            output=OutputSpec.from_dict(data.get("output", {})),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    def with_field(self, path: str, value) -> "Scenario":
        """A copy with ``value`` written into field ``path``.

        ``path`` is the same dotted/indexed syntax sweep axes use --
        ``workloads[0].params.window``, ``system.configurations``,
        ``workloads[*].arrival.rate_rps`` (the ``[*]`` wildcard fans out
        over every element) -- so programmatic overrides are validated
        exactly like sweep points: the result is re-parsed through
        :meth:`from_dict` and any bad path or value raises
        :class:`ScenarioError` naming the offending field.
        """
        from repro.api.fields import set_field

        data = self.to_dict()
        set_field(data, path, value)
        return Scenario.from_dict(data)

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.to_json(), encoding="utf-8")
        return path

    # -- registry-aware validation ------------------------------------------
    def import_modules(self) -> None:
        """Import the scenario's user modules (registering their entries)."""
        import importlib

        for index, module in enumerate(self.modules):
            try:
                importlib.import_module(module)
            except ImportError as exc:
                raise ScenarioError(
                    f"modules[{index}]", f"cannot import {module!r}: {exc}"
                ) from None

    def validate(self) -> None:
        """Check every name against the registries (after importing
        ``modules``); structural validation already happened in
        :meth:`from_dict` / the dataclass constructors."""
        from repro.api import registry

        self.import_modules()
        self.system.corona_config()
        self.scale.resolve()
        for index, name in enumerate(self.system.configurations):
            if name not in registry.CONFIGURATIONS:
                raise ScenarioError(
                    f"system.configurations[{index}]",
                    f"unknown configuration {name!r}; registered: "
                    f"{registry.CONFIGURATIONS.names()}",
                )
        for index, spec in enumerate(self.workloads):
            if spec.name not in registry.WORKLOADS:
                raise ScenarioError(
                    f"workloads[{index}].name",
                    f"unknown workload {spec.name!r}; registered: "
                    f"{registry.WORKLOADS.names()}",
                )
        for index, spec in enumerate(self.experiments):
            if spec.name not in registry.EXPERIMENTS:
                raise ScenarioError(
                    f"experiments[{index}].name",
                    f"unknown experiment {spec.name!r}; registered: "
                    f"{registry.EXPERIMENTS.names()}",
                )
        # Build the matrix too (workload construction only, no generation):
        # it catches what name checks cannot -- bad factory params, duplicate
        # effective workload names, cluster-count mismatches -- so a scenario
        # that validates is a scenario that runs.
        from repro.api.run import ScenarioMatrix

        ScenarioMatrix(self)


def load_scenario(path: Union[str, Path]) -> Scenario:
    """Read a scenario JSON file, raising :class:`ScenarioError` on bad
    JSON or a bad field."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ScenarioError(str(path), f"cannot read scenario file: {exc}") from None
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScenarioError(str(path), f"not valid JSON: {exc}") from None
    return Scenario.from_dict(data)
