"""The stable, declarative Scenario API.

This package is the supported surface for driving the reproduction
programmatically.  Three pieces:

* **Registries** (:mod:`repro.api.registry`) -- ``@register_configuration``,
  ``@register_workload`` and ``@register_experiment`` decorators over
  name -> factory tables, pre-seeded with the paper's five systems, its 17
  workloads and the built-in experiments.  User modules add entries without
  touching repro source.
* **Scenario spec** (:mod:`repro.api.scenario`) -- a frozen dataclass tree
  with an exact ``to_dict``/``from_dict`` JSON round-trip and validation
  errors that name the offending field.
* **``run()``** (:mod:`repro.api.run`) -- the single entry point: resolves a
  scenario against the registries, routes it through the serial or parallel
  runner, streams per-pair results, and writes the markdown/JSON/CSV sinks.

Quickstart::

    from repro.api import Scenario, SystemSpec, WorkloadSpec, run

    scenario = Scenario(
        name="xbar-uniform",
        system=SystemSpec(configurations=("LMesh/ECM", "XBar/OCM")),
        workloads=(WorkloadSpec(name="Uniform"),),
    )
    result = run(scenario, on_result=lambda r: print(r.configuration))
    print(result.report.to_markdown())

or, file-driven (the CLI's ``corona-repro run scenario.json``)::

    from repro.api import load_scenario, run

    result = run(load_scenario("scenario.json"))
"""

from repro.api.registry import (
    CONFIGURATIONS,
    EXPERIMENTS,
    SWEEPS,
    WORKLOADS,
    Registry,
    RegistryCollisionError,
    RegistryError,
    UnknownEntryError,
    build_configuration,
    build_sweep,
    build_workload,
    register_configuration,
    register_experiment,
    register_sweep,
    register_workload,
)
from repro.api.fields import set_field
from repro.api.run import (
    ExperimentContext,
    ScenarioMatrix,
    ScenarioResult,
    build_matrix,
    run,
)
from repro.api.scenario import (
    SCALE_TIERS,
    SCENARIO_FORMAT,
    ExperimentSpec,
    OutputSpec,
    ScaleSpec,
    Scenario,
    ScenarioError,
    SystemSpec,
    WorkloadSpec,
    load_scenario,
)
from repro.trace.arrival import ArrivalSpec

__all__ = [
    # registries
    "CONFIGURATIONS",
    "WORKLOADS",
    "EXPERIMENTS",
    "SWEEPS",
    "Registry",
    "RegistryError",
    "RegistryCollisionError",
    "UnknownEntryError",
    "register_configuration",
    "register_workload",
    "register_experiment",
    "register_sweep",
    "build_configuration",
    "build_workload",
    "build_sweep",
    # scenario spec
    "Scenario",
    "ScenarioError",
    "SystemSpec",
    "WorkloadSpec",
    "ArrivalSpec",
    "ScaleSpec",
    "ExperimentSpec",
    "OutputSpec",
    "SCALE_TIERS",
    "SCENARIO_FORMAT",
    "load_scenario",
    "set_field",
    # execution
    "run",
    "build_matrix",
    "ScenarioMatrix",
    "ScenarioResult",
    "ExperimentContext",
]
