"""``run(scenario) -> ScenarioResult``: the one stable execution entry point.

Everything the CLI (and user code) runs goes through here: the scenario's
names are resolved against the registries, a matrix implementing the
:class:`~repro.harness.experiments.EvaluationMatrix` protocol is built, and
the pairs are replayed by the serial or parallel runner -- the *same*
runners the legacy ``evaluate`` path uses, so a scenario translated from
legacy flags reproduces its results bit-identically.

Per-pair :class:`~repro.core.results.WorkloadResult`\\ s stream to the
``on_result`` callback as they finish (serial order), and the finished run
is exported to every sink the scenario's ``output`` block names: the
markdown report plus JSON/CSV result files carrying every stored field.
"""

from __future__ import annotations

import csv
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.api import registry
from repro.api.scenario import OutputSpec, Scenario, ScenarioError, WorkloadSpec
from repro.core.config import CoronaConfig
from repro.core.results import (
    RESULT_CSV_COLUMNS,
    WorkloadResult,
    results_to_csv_rows,
)
from repro.faults import FaultSpec
from repro.harness.experiments import ExperimentScale
from repro.obs.spec import ObservabilitySpec
from repro.harness.report import ReproductionReport
from repro.harness.resilience import PairFailure, RetryPolicy

#: Format tag written into JSON result files.
RESULTS_FORMAT = "corona-results/1"


class ScenarioMatrix:
    """A scenario resolved into the evaluation-matrix protocol.

    Implements the interface :class:`~repro.harness.runner.EvaluationRunner`,
    :class:`~repro.harness.parallel.ParallelEvaluationRunner` and
    :class:`~repro.harness.report.ReproductionReport` consume (``scale``,
    ``coherence``, ``corona_config``, ``configuration_names``,
    ``workloads()``, ``configurations()``, ``requests_for()``...), so the
    scenario path exercises exactly the machinery the legacy matrix does.
    """

    def __init__(self, scenario: Scenario) -> None:
        self.scenario = scenario
        self.scale: ExperimentScale = scenario.scale.resolve()
        self.coherence = scenario.coherence
        #: ``None`` (fault-free, bit-identical path) or the scenario's
        #: :class:`~repro.faults.FaultSpec`, installed into every simulator.
        self.faults: Optional[FaultSpec] = scenario.faults
        #: ``None`` (zero-overhead path) or the scenario's telemetry spec;
        #: the runners resolve per-pair sink paths from it.
        self.observability: Optional[ObservabilitySpec] = scenario.observability
        #: None when the scenario carries no overrides, so the runners keep
        #: building from the CORONA_DEFAULT singleton (bit-identical path).
        self.corona_config: Optional[CoronaConfig] = (
            scenario.system.corona_config() if scenario.system.overrides else None
        )
        self.configuration_names: Sequence[str] = list(
            scenario.system.configurations
        )
        self._configurations = [
            self._build_configuration(index, name)
            for index, name in enumerate(self.configuration_names)
        ]
        specs = list(scenario.workloads) or [
            WorkloadSpec(name=name) for name in registry.WORKLOADS.default_names()
        ]
        self._workloads = [
            self._build_workload(index, spec) for index, spec in enumerate(specs)
        ]
        self._spec_by_name: Dict[str, WorkloadSpec] = {}
        for index, (spec, workload) in enumerate(zip(specs, self._workloads)):
            if workload.name in self._spec_by_name:
                raise ScenarioError(
                    f"workloads[{index}]",
                    f"duplicate workload name {workload.name!r}; rename one "
                    f"via its params ('name' for synthetic, 'label' for "
                    f"SPLASH-2 workloads)",
                )
            self._spec_by_name[workload.name] = spec

    def _build_configuration(self, index: int, name: str):
        try:
            configuration = registry.build_configuration(name)
        except registry.RegistryError as exc:
            raise ScenarioError(
                f"system.configurations[{index}]", str(exc)
            ) from None
        if configuration.name != name:
            raise ScenarioError(
                f"system.configurations[{index}]",
                f"registry entry {name!r} built a configuration named "
                f"{configuration.name!r}; the names must match so parallel "
                f"workers and report columns resolve consistently",
            )
        return configuration

    def _build_workload(self, index: int, spec: WorkloadSpec):
        if "num_requests" in spec.params:
            # A factory-level num_requests would be silently out-ranked by
            # requests_for's spec/scale logic; insist on the spec field.
            raise ScenarioError(
                f"workloads[{index}].params.num_requests",
                "set the workload's top-level \"num_requests\" field "
                "instead; params.num_requests would not scale the run",
            )
        try:
            workload = registry.build_workload(
                spec.name, **spec.factory_params()
            )
        except registry.RegistryError as exc:
            raise ScenarioError(f"workloads[{index}].name", str(exc)) from None
        except (TypeError, ValueError, KeyError) as exc:
            raise ScenarioError(f"workloads[{index}].params", str(exc)) from None
        expected_clusters = (
            self.corona_config.num_clusters if self.corona_config else None
        )
        actual_clusters = getattr(workload, "num_clusters", None)
        if (
            expected_clusters is not None
            and actual_clusters is not None
            and actual_clusters != expected_clusters
        ):
            raise ScenarioError(
                f"workloads[{index}].params",
                f"workload spans {actual_clusters} clusters but "
                f"system.overrides sets num_clusters={expected_clusters}; "
                f"add \"num_clusters\": {expected_clusters} to the "
                f"workload's params",
            )
        return workload

    # -- EvaluationMatrix protocol ------------------------------------------
    def workloads(self) -> List:
        return list(self._workloads)

    def workload_names(self) -> List[str]:
        return [w.name for w in self._workloads]

    def synthetic_names(self) -> List[str]:
        return [
            w.name for w in self._workloads if getattr(w, "is_synthetic", False)
        ]

    def splash_names(self) -> List[str]:
        return [
            w.name
            for w in self._workloads
            if not getattr(w, "is_synthetic", False)
        ]

    def configurations(self) -> List:
        return list(self._configurations)

    def requests_for(self, workload) -> int:
        spec = self._spec_by_name.get(workload.name)
        if spec is not None and spec.num_requests is not None:
            return spec.num_requests
        fixed = getattr(workload, "fixed_requests", None)
        if fixed is not None:
            # Trace-file workloads replay their whole file by default; the
            # scale tier cannot grow or shrink fixed on-disk data.
            return fixed
        if getattr(workload, "is_synthetic", False):
            return self.scale.synthetic_requests
        profile = getattr(workload, "profile", None)
        paper_requests = getattr(profile, "paper_requests", None)
        if paper_requests is not None:
            return self.scale.splash_requests(paper_requests)
        return self.scale.synthetic_requests

    def workload_spec(self, workload_name: str) -> Optional[WorkloadSpec]:
        """The spec an effective workload name was built from (None for
        names outside this matrix) -- the sweep engine keys its cross-point
        trace cache on the spec's canonical dict form."""
        return self._spec_by_name.get(workload_name)

    def run_count(self) -> int:
        return len(self._configurations) * len(self._workloads)


def build_matrix(scenario: Scenario) -> ScenarioMatrix:
    """Resolve ``scenario`` against the registries (imports its modules)."""
    scenario.import_modules()
    return ScenarioMatrix(scenario)


@dataclass
class ExperimentContext:
    """What a registered experiment factory gets to work with.

    ``written`` is shared with the enclosing :class:`ScenarioResult`:
    experiments that emit structured sinks (JSON/CSV files of their own, the
    sweep-backed ones do) record the paths here so they surface in the CLI's
    "written to" summary alongside the scenario's sinks.
    """

    scenario: Scenario
    matrix: ScenarioMatrix
    results: List[WorkloadResult]
    jobs: int = 1
    progress: Optional[Callable[[str], None]] = None
    written: Dict[str, Path] = field(default_factory=dict)

    @property
    def scale(self) -> ExperimentScale:
        return self.matrix.scale


@dataclass
class ScenarioResult:
    """Everything one scenario run produced."""

    scenario: Scenario
    results: List[WorkloadResult]
    report: ReproductionReport
    wall_clock_seconds: float = 0.0
    written: Dict[str, Path] = field(default_factory=dict)
    #: Pairs that failed after retries (``allow_failures`` runs only; a
    #: strict run raises instead of producing a result).
    failures: List[PairFailure] = field(default_factory=list)
    #: Wall-clock profiling: ``phases`` (seconds per harness phase),
    #: ``workers`` (replay seconds per worker process) and ``pairs``
    #: (per-pair replay seconds).  Collected on every run -- a handful of
    #: ``perf_counter`` reads -- and persisted into the JSON sink.
    timings: Dict[str, object] = field(default_factory=dict)

    def to_markdown(self) -> str:
        return self.report.to_markdown()

    def to_json_dict(self) -> Dict[str, object]:
        """The JSON result-sink payload (scenario + every result field)."""
        payload = {
            "format": RESULTS_FORMAT,
            "scenario": self.scenario.to_dict(),
            "wall_clock_seconds": self.wall_clock_seconds,
            "results": [result.to_dict() for result in self.results],
        }
        if self.failures:
            payload["failures"] = [f.to_dict() for f in self.failures]
        if self.timings:
            payload["timings"] = self.timings
        return payload


def _write_path(raw: str) -> Path:
    path = Path(raw)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    return path


def _write_outputs(
    result: ScenarioResult, matrix: Optional[ScenarioMatrix] = None
) -> None:
    # The JSON sink is written last so its "timings" section can include the
    # report/CSV write time (it cannot contain its own).
    output = result.scenario.output
    started = time.perf_counter()
    if output.report:
        path = _write_path(output.report)
        path.write_text(result.to_markdown(), encoding="utf-8")
        result.written["report"] = path
    if output.csv:
        path = _write_path(output.csv)
        with path.open("w", encoding="utf-8", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(RESULT_CSV_COLUMNS)
            writer.writerows(results_to_csv_rows(result.results))
        result.written["csv"] = path
    if result.timings and (output.report or output.csv):
        phases = result.timings.setdefault("phases", {})
        phases["sink_write"] = (
            phases.get("sink_write", 0.0) + time.perf_counter() - started
        )
    if output.json:
        path = _write_path(output.json)
        path.write_text(
            json.dumps(result.to_json_dict(), indent=2) + "\n", encoding="utf-8"
        )
        result.written["json"] = path
        _write_artifact_manifest(result, matrix, path)


def _write_artifact_manifest(
    result: ScenarioResult, matrix: Optional[ScenarioMatrix], json_sink: Path
) -> None:
    """The ``corona-artifacts/1`` manifest of everything the run left behind:
    result sinks plus each pair's telemetry artifacts, resolved with the same
    slugging the runners write with -- how `corona-repro diff` finds the raw
    latency samples of a (configuration, workload) pair."""
    from repro.obs.artifacts import (
        DiffableArtifact,
        artifact_manifest_path,
        pair_artifacts,
        write_artifact_manifest,
    )

    artifacts = [
        DiffableArtifact(kind=kind, path=str(path))
        for kind, path in sorted(result.written.items())
    ]
    observability = matrix.observability if matrix is not None else None
    if observability is not None and observability.simulation_active:
        multi = matrix.run_count() > 1
        for replay in result.results:
            artifacts.extend(
                pair_artifacts(
                    observability, replay.configuration, replay.workload, multi
                )
            )
    manifest = write_artifact_manifest(
        artifact_manifest_path(json_sink),
        artifacts,
        run_name=result.scenario.name,
    )
    result.written["artifacts"] = manifest


def run(
    scenario: Scenario,
    *,
    jobs: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    on_result: Optional[Callable[[WorkloadResult], None]] = None,
    policy: Optional[RetryPolicy] = None,
) -> ScenarioResult:
    """Execute ``scenario`` and return its results, report and sinks.

    ``jobs`` overrides the scenario's worker count (``1`` = serial in
    process, ``0`` = every CPU).  ``on_result`` receives each pair's
    :class:`WorkloadResult` the moment it completes, in serial order --
    the streaming hook for dashboards and long sweeps.  Results are
    bit-identical between serial and parallel execution.

    ``policy`` is the resilience contract
    (:class:`~repro.harness.resilience.RetryPolicy`): per-pair timeouts
    (parallel runs), bounded retries with backoff, and -- under
    ``allow_failures`` -- partial results with the failed pairs recorded
    on :attr:`ScenarioResult.failures` instead of an exception.  ``None``
    keeps the historical fail-fast behavior.
    """
    scenario.import_modules()
    # Experiment names are checked before the (long) matrix run so a typo
    # fails in milliseconds, not after the last pair finishes; everything
    # else is validated by the matrix construction itself, which fires each
    # registered factory exactly once.
    for index, spec in enumerate(scenario.experiments):
        if spec.name not in registry.EXPERIMENTS:
            raise ScenarioError(
                f"experiments[{index}].name",
                f"unknown experiment {spec.name!r}; registered: "
                f"{registry.EXPERIMENTS.names()}",
            )
    matrix = ScenarioMatrix(scenario)
    effective_jobs = scenario.jobs if jobs is None else jobs
    heartbeat = None
    obs_spec = matrix.observability
    if obs_spec is not None and obs_spec.progress:
        from repro.obs.progress import ProgressReporter

        heartbeat = ProgressReporter(
            matrix.run_count(),
            interval_s=obs_spec.progress_interval_s,
            label="run",
        )
    started = time.perf_counter()
    if effective_jobs == 1:
        from repro.harness.runner import EvaluationRunner

        runner = EvaluationRunner(
            matrix=matrix,
            progress=progress,
            on_result=on_result,
            policy=policy,
            heartbeat=heartbeat,
        )
    else:
        from repro.harness.parallel import ParallelEvaluationRunner

        runner = ParallelEvaluationRunner(
            matrix=matrix,
            jobs=effective_jobs,
            progress=progress,
            on_result=on_result,
            setup_modules=tuple(scenario.modules),
            policy=policy,
            heartbeat=heartbeat,
        )
    try:
        runner.run()
    finally:
        if heartbeat is not None:
            heartbeat.finish()
    wall_clock = time.perf_counter() - started
    failures = list(getattr(runner, "failures", []) or [])
    report_results = list(runner.results)
    if failures:
        # Partial matrix: figures normalize per workload against a baseline
        # configuration, so workloads missing any configuration's result are
        # dropped from the *report* (the result list and sinks keep every
        # completed pair).
        expected = set(matrix.configuration_names)
        covered: Dict[str, set] = {}
        for res in report_results:
            covered.setdefault(res.workload, set()).add(res.configuration)
        report_results = [
            res
            for res in report_results
            if covered.get(res.workload, set()) >= expected
        ]
    report = ReproductionReport(
        matrix=matrix,
        results=report_results,
        wall_clock_seconds=runner.total_wall_clock_seconds(),
    )
    timings: Dict[str, object] = {}
    phases = dict(getattr(runner, "phase_seconds", None) or {})
    if phases:
        timings["phases"] = phases
    workers = dict(getattr(runner, "worker_seconds", None) or {})
    if workers:
        timings["workers"] = workers
    if runner.run_seconds:
        timings["pairs"] = [
            {"configuration": pair[0], "workload": pair[1], "seconds": seconds}
            for pair, seconds in runner.run_seconds.items()
        ]
    result = ScenarioResult(
        scenario=scenario,
        results=list(runner.results),
        report=report,
        wall_clock_seconds=wall_clock,
        failures=failures,
        timings=timings,
    )
    context = ExperimentContext(
        scenario=scenario,
        matrix=matrix,
        results=result.results,
        jobs=effective_jobs,
        progress=progress,
        written=result.written,
    )
    for index, spec in enumerate(scenario.experiments):
        try:
            factory = registry.EXPERIMENTS.get(spec.name)
        except registry.RegistryError as exc:
            raise ScenarioError(f"experiments[{index}].name", str(exc)) from None
        try:
            section = factory(context, **dict(spec.params))
        except TypeError as exc:
            raise ScenarioError(f"experiments[{index}].params", str(exc)) from None
        report.extra_sections.append(section)
    _write_outputs(result, matrix)
    return result


# ---------------------------------------------------------------------------
# Seed experiments
# ---------------------------------------------------------------------------

@registry.register_experiment("coherence-sweep")
def _coherence_sweep_experiment(
    context: ExperimentContext,
    fractions: Optional[Sequence[float]] = None,
    configurations: Optional[Sequence[str]] = None,
    num_requests: Optional[int] = None,
    sharing: Optional[Dict[str, object]] = None,
    json: Optional[str] = None,
    csv: Optional[str] = None,
):
    """The sharing-fraction sweep (photonic vs electrical coherence cost).

    Defaults mirror ``evaluate --coherence``: the LMesh/ECM / HMesh/ECM /
    XBar/OCM trio restricted to the scenario's configurations, at the
    scenario scale's synthetic request count and seed.  Re-expressed as a
    declarative sweep spec (:func:`repro.sweeps.coherence_sweep_spec`) and
    executed by the sweep engine -- the numbers are exactly the legacy
    :func:`~repro.harness.experiments.coherence_sweep` numbers
    (equivalence-tested), and ``json``/``csv`` params additionally emit the
    long-form per-point records the report section cannot carry.
    """
    from repro.harness.experiments import (
        COHERENCE_SWEEP_CONFIGURATIONS,
        COHERENCE_SWEEP_FRACTIONS,
        CoherenceSweepPoint,
        coherence_sweep_report,
    )
    from repro.sweeps import coherence_sweep_spec, run_sweep

    names = configurations
    if names is None:
        names = [
            name
            for name in COHERENCE_SWEEP_CONFIGURATIONS
            if name in context.matrix.configuration_names
        ] or list(context.matrix.configuration_names)
    fractions = tuple(fractions) if fractions else COHERENCE_SWEEP_FRACTIONS
    spec = coherence_sweep_spec(
        fractions=fractions,
        configurations=names,
        num_requests=num_requests or context.scale.synthetic_requests,
        seed=context.scale.seed,
        coherence=context.scenario.coherence,
        sharing_kwargs=sharing,
        # System overrides and user registrations apply to the sweep exactly
        # as to the matrix (same architecture, worker-importable modules).
        overrides=context.scenario.system.overrides,
        modules=context.scenario.modules,
        output=OutputSpec(json=json, csv=csv),
    )
    outcome = run_sweep(spec, jobs=context.jobs, progress=context.progress)
    for kind, path in outcome.written.items():
        context.written[f"coherence-sweep-{kind}"] = path
    points = [
        CoherenceSweepPoint(
            sharing_fraction=fraction,
            results=tuple(
                record.result
                for record in outcome.records
                if record.axis_values["fraction"] == fraction
            ),
        )
        for fraction in fractions
    ]
    return coherence_sweep_report(points)


@registry.register_experiment("sensitivity")
def _sensitivity_experiment(
    context: ExperimentContext,
    json: Optional[str] = None,
    csv: Optional[str] = None,
):
    """The photonic-design sensitivity sweeps as a report section.

    ``json``/``csv`` params additionally write the sweep points as
    structured records (one row per swept parameter value) -- the machine
    channel for the numbers the text tables render.
    """
    import csv as csv_module
    import json as json_module

    from repro.harness.sensitivity import (
        physical_design_sweep_records,
        physical_design_sweeps_text,
    )

    if json or csv:
        records = physical_design_sweep_records()
        if json:
            path = _write_path(json)
            path.write_text(
                json_module.dumps(
                    {"format": "corona-sensitivity/1", "records": records},
                    indent=2,
                )
                + "\n",
                encoding="utf-8",
            )
            context.written["sensitivity-json"] = path
        if csv:
            path = _write_path(csv)
            with path.open("w", encoding="utf-8", newline="") as handle:
                writer = csv_module.writer(handle)
                columns = list(records[0])
                writer.writerow(columns)
                writer.writerows(
                    [record[column] for column in columns] for record in records
                )
            context.written["sensitivity-csv"] = path
    return (
        "## Photonic design sensitivity\n\n```\n"
        + physical_design_sweeps_text()
        + "\n```"
    )
