"""Name -> factory registries behind the Scenario API.

Three tables make everything the harness can run addressable by name:

* **configurations** -- ``name -> () -> SystemConfiguration``.  Seeded with
  the paper's five systems (:mod:`repro.core.configs`).
* **workloads** -- ``name -> (**params) -> workload``.  Seeded with the six
  synthetic patterns and the eleven SPLASH-2 models, in the paper's plot
  order (which is also the evaluation matrix's iteration order).
* **experiments** -- ``name -> (context, **params) -> markdown section``.
  Seeded in :mod:`repro.api.run` with the coherence sharing-fraction sweep
  and the photonic sensitivity study.

User modules extend any table without touching repro source::

    from repro.api import register_configuration, register_workload

    @register_configuration("XBar/ECM")
    def xbar_ecm():
        return SystemConfiguration(name="XBar/ECM", ...)

    @register_workload("Ping-Pong")
    def ping_pong(**params):
        return MyWorkload(**params)

A scenario file names such a module in its ``modules`` list and the runtime
imports it before resolving names -- in the parent *and* (for non-fork start
methods) in every worker process, so registered entries survive the trip
through :class:`~repro.harness.parallel.ParallelEvaluationRunner`.

Collisions raise :class:`RegistryCollisionError` (re-registering a name is
almost always a typo; pass ``replace=True`` to shadow deliberately) and
unknown names raise :class:`UnknownEntryError` listing what *is* registered.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.configs import SystemConfiguration, all_configurations
from repro.trace.splash2 import SPLASH2_ORDER, splash2_workload
from repro.trace.synthetic import SyntheticPattern, synthetic_workload


class RegistryError(ValueError):
    """Base class for registry failures."""


class RegistryCollisionError(RegistryError):
    """A name was registered twice without ``replace=True``."""


class UnknownEntryError(RegistryError, KeyError):
    """A name was looked up that no entry carries."""

    def __str__(self) -> str:  # KeyError quotes its args; keep the message
        return self.args[0]


class Registry:
    """One name -> factory table with decorator-based registration."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, Callable] = {}

    def register(
        self,
        name: Optional[str] = None,
        *,
        replace: bool = False,
    ) -> Callable:
        """Decorator registering a factory under ``name``.

        With no ``name`` the factory's ``__name__`` is used.  Registering an
        existing name raises :class:`RegistryCollisionError` unless
        ``replace=True``.
        """

        def decorator(factory: Callable) -> Callable:
            key = name if name is not None else factory.__name__
            if not isinstance(key, str) or not key:
                raise RegistryError(
                    f"{self.kind} registry names must be non-empty strings, "
                    f"got {key!r}"
                )
            if key in self._entries and not replace:
                raise RegistryCollisionError(
                    f"{self.kind} {key!r} is already registered; pass "
                    f"replace=True to shadow it"
                )
            self._entries[key] = factory
            return factory

        return decorator

    def get(self, name: str) -> Callable:
        """The factory registered under ``name``."""
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownEntryError(
                f"unknown {self.kind} {name!r}; registered: {self.names()}"
            ) from None

    def build(self, name: str, **params):
        """Call the factory registered under ``name``."""
        return self.get(name)(**params)

    def names(self) -> List[str]:
        """Registered names in registration (= paper plot) order."""
        return list(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)


#: The three public tables.
CONFIGURATIONS = Registry("configuration")
WORKLOADS = Registry("workload")
EXPERIMENTS = Registry("experiment")


def register_configuration(name: Optional[str] = None, *, replace: bool = False):
    """Register a ``() -> SystemConfiguration`` factory by name."""
    return CONFIGURATIONS.register(name, replace=replace)


def register_workload(name: Optional[str] = None, *, replace: bool = False):
    """Register a ``(**params) -> workload`` factory by name.

    The built object must offer ``generate(seed, num_requests)`` (and
    ideally ``generate_packed``), a ``name`` and a ``window`` -- the same
    protocol the stock synthetic and SPLASH-2 workloads implement.
    """
    return WORKLOADS.register(name, replace=replace)


def register_experiment(name: Optional[str] = None, *, replace: bool = False):
    """Register a ``(context, **params) -> markdown`` experiment factory."""
    return EXPERIMENTS.register(name, replace=replace)


def build_configuration(name: str) -> SystemConfiguration:
    """Build the configuration registered under ``name``."""
    configuration = CONFIGURATIONS.build(name)
    if not isinstance(configuration, SystemConfiguration):
        raise RegistryError(
            f"configuration factory {name!r} returned "
            f"{type(configuration).__name__}, expected SystemConfiguration"
        )
    return configuration


def build_workload(name: str, **params):
    """Build the workload registered under ``name`` with ``params``."""
    return WORKLOADS.build(name, **params)


# ---------------------------------------------------------------------------
# Seed entries: everything previously runnable, now addressable by name.
# ---------------------------------------------------------------------------

def _seed() -> None:
    for configuration in all_configurations():
        # Bind the loop variable via a default argument; the paper systems
        # are immutable singletons, so the factory just hands them out.
        CONFIGURATIONS.register(configuration.name)(
            lambda _c=configuration: _c
        )

    _pattern_names = {
        SyntheticPattern.UNIFORM: "Uniform",
        SyntheticPattern.HOT_SPOT: "Hot Spot",
        SyntheticPattern.TORNADO: "Tornado",
        SyntheticPattern.TRANSPOSE: "Transpose",
        SyntheticPattern.BIT_REVERSAL: "Bit Reversal",
        SyntheticPattern.NEIGHBOR: "Neighbor",
    }
    for pattern, display_name in _pattern_names.items():
        WORKLOADS.register(display_name)(
            lambda _p=pattern.value, **params: synthetic_workload(_p, **params)
        )
    for benchmark in SPLASH2_ORDER:
        WORKLOADS.register(benchmark)(
            lambda _b=benchmark, **params: splash2_workload(_b, **params)
        )


_seed()
