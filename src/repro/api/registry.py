"""Name -> factory registries behind the Scenario API.

Four tables make everything the harness can run addressable by name:

* **configurations** -- ``name -> () -> SystemConfiguration``.  Seeded with
  the paper's five systems (:mod:`repro.core.configs`).
* **workloads** -- ``name -> (**params) -> workload``.  Seeded with the six
  synthetic patterns and the eleven SPLASH-2 models, in the paper's plot
  order (which is also the evaluation matrix's iteration order), plus the
  *explicit-only* ``trace-file`` wrapper for on-disk traces (explicit-only
  entries require parameters, so an empty ``workloads`` list -- "run every
  registered workload" -- skips them; see :meth:`Registry.default_names`).
* **experiments** -- ``name -> (context, **params) -> markdown section``.
  Seeded in :mod:`repro.api.run` with the coherence sharing-fraction sweep
  and the photonic sensitivity study.
* **sweeps** -- ``name -> (**params) -> SweepSpec``.  Seeded in
  :mod:`repro.sweeps.library` (importing :mod:`repro.sweeps` registers the
  stock specs) with the coherence and sensitivity grids.

User modules extend any table without touching repro source::

    from repro.api import register_configuration, register_workload

    @register_configuration("XBar/ECM")
    def xbar_ecm():
        return SystemConfiguration(name="XBar/ECM", ...)

    @register_workload("Ping-Pong")
    def ping_pong(**params):
        return MyWorkload(**params)

A scenario file names such a module in its ``modules`` list and the runtime
imports it before resolving names -- in the parent *and* (for non-fork start
methods) in every worker process, so registered entries survive the trip
through :class:`~repro.harness.parallel.ParallelEvaluationRunner`.

Collisions raise :class:`RegistryCollisionError` (re-registering a name is
almost always a typo; pass ``replace=True`` to shadow deliberately) and
unknown names raise :class:`UnknownEntryError` listing what *is* registered.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.configs import SystemConfiguration, all_configurations
from repro.trace.splash2 import SPLASH2_ORDER, splash2_workload
from repro.trace.synthetic import SyntheticPattern, synthetic_workload


class RegistryError(ValueError):
    """Base class for registry failures."""


class RegistryCollisionError(RegistryError):
    """A name was registered twice without ``replace=True``."""


class UnknownEntryError(RegistryError, KeyError):
    """A name was looked up that no entry carries."""

    def __str__(self) -> str:  # KeyError quotes its args; keep the message
        return self.args[0]


class Registry:
    """One name -> factory table with decorator-based registration."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, Callable] = {}
        self._explicit_only: set = set()

    def register(
        self,
        name: Optional[str] = None,
        *,
        replace: bool = False,
        explicit_only: bool = False,
    ) -> Callable:
        """Decorator registering a factory under ``name``.

        With no ``name`` the factory's ``__name__`` is used.  Registering an
        existing name raises :class:`RegistryCollisionError` unless
        ``replace=True``.  ``explicit_only`` entries need parameters to
        build (e.g. the ``trace-file`` workload needs a path), so they are
        excluded from :meth:`default_names` -- the expansion used when a
        scenario asks for *every* registered entry.
        """

        def decorator(factory: Callable) -> Callable:
            key = name if name is not None else factory.__name__
            if not isinstance(key, str) or not key:
                raise RegistryError(
                    f"{self.kind} registry names must be non-empty strings, "
                    f"got {key!r}"
                )
            if key in self._entries and not replace:
                raise RegistryCollisionError(
                    f"{self.kind} {key!r} is already registered; pass "
                    f"replace=True to shadow it"
                )
            self._entries[key] = factory
            if explicit_only:
                self._explicit_only.add(key)
            else:
                self._explicit_only.discard(key)
            return factory

        return decorator

    def get(self, name: str) -> Callable:
        """The factory registered under ``name``."""
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownEntryError(
                f"unknown {self.kind} {name!r}; registered: {self.names()}"
            ) from None

    def build(self, name: str, /, **params):
        """Call the factory registered under ``name``.

        ``name`` is positional-only so ``params`` may itself carry a
        ``name`` key (the documented rename for synthetic workloads).
        """
        return self.get(name)(**params)

    def names(self) -> List[str]:
        """Registered names in registration (= paper plot) order."""
        return list(self._entries)

    def default_names(self) -> List[str]:
        """Names eligible for "every registered entry" expansion: the
        registration order minus explicit-only entries."""
        return [name for name in self._entries if name not in self._explicit_only]

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)


#: The four public tables.
CONFIGURATIONS = Registry("configuration")
WORKLOADS = Registry("workload")
EXPERIMENTS = Registry("experiment")
SWEEPS = Registry("sweep")


def register_configuration(name: Optional[str] = None, *, replace: bool = False):
    """Register a ``() -> SystemConfiguration`` factory by name."""
    return CONFIGURATIONS.register(name, replace=replace)


def register_workload(
    name: Optional[str] = None,
    *,
    replace: bool = False,
    explicit_only: bool = False,
):
    """Register a ``(**params) -> workload`` factory by name.

    The built object must offer ``generate(seed, num_requests)`` (and
    ideally ``generate_packed``), a ``name`` and a ``window`` -- the same
    protocol the stock synthetic and SPLASH-2 workloads implement.
    ``explicit_only`` entries (parameter-requiring wrappers like
    ``trace-file``) are skipped when a scenario's empty ``workloads`` list
    expands to every registered workload.
    """
    return WORKLOADS.register(name, replace=replace, explicit_only=explicit_only)


def register_experiment(name: Optional[str] = None, *, replace: bool = False):
    """Register a ``(context, **params) -> markdown`` experiment factory."""
    return EXPERIMENTS.register(name, replace=replace)


def register_sweep(name: Optional[str] = None, *, replace: bool = False):
    """Register a ``(**params) -> SweepSpec`` factory by name.

    Registered sweeps are runnable by name through ``corona-repro sweep
    run <name>`` and :func:`repro.sweeps.build_registered_sweep`.
    """
    return SWEEPS.register(name, replace=replace)


def build_sweep(name: str, **params):
    """Build the sweep spec registered under ``name`` with ``params``."""
    spec = SWEEPS.build(name, **params)
    from repro.sweeps.spec import SweepSpec  # deferred: sweeps imports api

    if not isinstance(spec, SweepSpec):
        raise RegistryError(
            f"sweep factory {name!r} returned {type(spec).__name__}, "
            f"expected SweepSpec"
        )
    return spec


def build_configuration(name: str) -> SystemConfiguration:
    """Build the configuration registered under ``name``."""
    configuration = CONFIGURATIONS.build(name)
    if not isinstance(configuration, SystemConfiguration):
        raise RegistryError(
            f"configuration factory {name!r} returned "
            f"{type(configuration).__name__}, expected SystemConfiguration"
        )
    return configuration


def build_workload(name: str, /, **params):
    """Build the workload registered under ``name`` with ``params``
    (which may include a ``name`` rename -- the registry key is
    positional-only)."""
    return WORKLOADS.build(name, **params)


# ---------------------------------------------------------------------------
# Seed entries: everything previously runnable, now addressable by name.
# ---------------------------------------------------------------------------

def _seed() -> None:
    for configuration in all_configurations():
        # Bind the loop variable via a default argument; the paper systems
        # are immutable singletons, so the factory just hands them out.
        CONFIGURATIONS.register(configuration.name)(
            lambda _c=configuration: _c
        )

    _pattern_names = {
        SyntheticPattern.UNIFORM: "Uniform",
        SyntheticPattern.HOT_SPOT: "Hot Spot",
        SyntheticPattern.TORNADO: "Tornado",
        SyntheticPattern.TRANSPOSE: "Transpose",
        SyntheticPattern.BIT_REVERSAL: "Bit Reversal",
        SyntheticPattern.NEIGHBOR: "Neighbor",
    }
    for pattern, display_name in _pattern_names.items():
        WORKLOADS.register(display_name)(
            lambda _p=pattern.value, **params: synthetic_workload(_p, **params)
        )
    for benchmark in SPLASH2_ORDER:
        WORKLOADS.register(benchmark)(
            lambda _b=benchmark, **params: splash2_workload(_b, **params)
        )

    from repro.trace.file import trace_file_workload

    # Explicit-only: building it needs a path, so "run every registered
    # workload" must not trip over it.
    WORKLOADS.register("trace-file", explicit_only=True)(trace_file_workload)

    from repro.trace.address import registered_address_workload

    # Address-level workloads drive raw per-thread address streams through
    # the functional cache hierarchy, so their miss traces come from actual
    # cache behaviour.  Explicit-only: they are slower than the statistical
    # models, so the default 5 x 17 matrix must not grow them in.
    for kind in ("streaming", "resident", "random-shared"):
        WORKLOADS.register(f"addr-{kind}", explicit_only=True)(
            lambda _k=kind, **params: registered_address_workload(_k, **params)
        )


_seed()
